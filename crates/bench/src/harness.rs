//! Experiment drivers regenerating every table and figure of §6.
//!
//! Each `fig*`/`tab*` function prints the same rows/series the paper
//! reports. Dataset sizes come from [`Scale`]; the default (`small`)
//! keeps the full suite within minutes on a laptop, `SI_SCALE=paper`
//! unlocks the paper's 100k/1M-sentence points.

use std::path::PathBuf;
use std::time::Instant;

use si_baselines::{ATreeGrep, FreqIndex};
use si_core::cover::{minrc, optimal_cover};
use si_core::{Coding, IndexOptions, SubtreeIndex};
use si_corpus::{fb_query_set, wh_query_set, Corpus, FbClass, GeneratorConfig, WhGroup};
use si_obs::{Histogram, HistogramSummary, Timings};
use si_parsetree::ParseTree;
use si_query::Query;

/// Dataset scale selector (`SI_SCALE` environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: trends visible, minutes of runtime.
    Small,
    /// The paper's scale (up to 10⁶ sentences); needs several GB of RAM
    /// and substantially more time.
    Paper,
}

impl Scale {
    /// Reads `SI_SCALE` (`small` default, `paper` opt-in).
    pub fn from_env() -> Self {
        match std::env::var("SI_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// Corpus sizes for the index-size grid (Figures 8–10, Table 1).
    pub fn grid_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![100, 1_000, 10_000],
            Scale::Paper => vec![100, 1_000, 10_000, 100_000],
        }
    }

    /// Corpus sizes for the key-growth curve (Figure 2).
    pub fn fig2_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1, 10, 100, 1_000, 10_000, 100_000],
            Scale::Paper => vec![1, 10, 100, 1_000, 10_000, 100_000, 1_000_000],
        }
    }

    /// Corpus size for the query-runtime experiments (Figures 11–12,
    /// Table 2).
    pub fn query_corpus(self) -> usize {
        match self {
            Scale::Small => 10_000,
            Scale::Paper => 100_000,
        }
    }

    /// Corpus sizes for the scalability curve (Figure 13).
    pub fn fig13_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1_000, 10_000, 100_000],
            Scale::Paper => vec![1_000, 10_000, 100_000, 1_000_000],
        }
    }

    /// Repetitions per query when timing.
    pub fn reps(self) -> usize {
        match self {
            Scale::Small => 3,
            Scale::Paper => 5,
        }
    }
}

/// Default seed of the indexed corpus; held-out trees use `seed + 1`,
/// FB query sampling `seed + 2`.
pub const CORPUS_SEED: u64 = 0x5EED_0001;

static SEED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(CORPUS_SEED);

/// Overrides the corpus RNG seed for this process (the `experiments
/// --seed N` flag) so `BENCH_*.json` runs are reproducible across
/// machines and re-runs.
pub fn set_corpus_seed(seed: u64) {
    SEED.store(seed, std::sync::atomic::Ordering::Relaxed);
}

/// The active corpus RNG seed ([`CORPUS_SEED`] unless overridden).
pub fn corpus_seed() -> u64 {
    SEED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Generates the standard corpus of `n` sentences.
pub fn corpus(n: usize) -> Corpus {
    GeneratorConfig::default()
        .with_seed(corpus_seed())
        .generate(n)
}

/// A scratch directory under the system temp dir, removed on drop.
pub struct Workdir(pub PathBuf);

impl Workdir {
    /// Creates `si-bench-<name>-<pid>`.
    pub fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("si-bench-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create workdir");
        Workdir(dir)
    }

    /// Path of a child entry.
    pub fn path(&self, child: &str) -> PathBuf {
        self.0.join(child)
    }
}

impl Drop for Workdir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Times a closure in seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Named WH queries.
pub type WhWorkload = Vec<(String, Query)>;
/// FB queries tagged with class and size.
pub type FbWorkload = Vec<(FbClass, usize, Query)>;

/// The standard query workload: 48 WH + 70 FB queries, parsed against
/// the corpus interner.
pub fn workload(corpus: &Corpus, heldout_n: usize) -> (WhWorkload, FbWorkload) {
    let mut interner = corpus.interner().clone();
    let wh = wh_query_set(&mut interner);
    let heldout = GeneratorConfig::default()
        .with_seed(corpus_seed() + 1)
        .generate_into(heldout_n, &mut interner);
    let fb = fb_query_set(corpus, &heldout, corpus_seed() + 2);
    (
        wh.into_iter().map(|q| (q.text, q.query)).collect(),
        fb.into_iter().map(|q| (q.class, q.size, q.query)).collect(),
    )
}

// --------------------------------------------------------------------
// Figure 2: number of index keys (unique subtrees) vs corpus size
// --------------------------------------------------------------------

/// Prints Figure 2: unique-subtree counts per `mss` and corpus size.
pub fn fig2(scale: Scale) {
    println!("# Figure 2: number of index keys (unique subtrees) vs input size");
    println!("sentences  mss=1  mss=2  mss=3  mss=4  mss=5");
    let sizes = scale.fig2_sizes();
    let max = *sizes.last().unwrap();
    let big = corpus(max);
    for &n in &sizes {
        let mut row = format!("{n:>9}");
        for mss in 1..=5 {
            let mut keys = std::collections::HashSet::new();
            for tree in &big.trees()[..n] {
                si_core::extract::for_each_subtree(tree, mss, |s| {
                    keys.insert(s.key.clone());
                });
            }
            row.push_str(&format!("  {:>8}", keys.len()));
        }
        println!("{row}");
    }
}

// --------------------------------------------------------------------
// Figure 3: avg subtrees per node vs branching factor
// --------------------------------------------------------------------

/// Prints Figure 3: average number of extracted subtrees by branching
/// factor of the subtree root, for sizes 2–5.
pub fn fig3(scale: Scale) {
    println!("# Figure 3: avg number of subtrees by root branching factor");
    println!("branching  count(nodes)  ss=2  ss=3  ss=4  ss=5");
    // ">50,000 nodes" in the paper; a few thousand sentences suffice.
    let n = match scale {
        Scale::Small => 2_000,
        Scale::Paper => 5_000,
    };
    let corpus = corpus(n);
    // sums[b][ss] and counts[b]
    let mut sums: Vec<[f64; 6]> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for tree in corpus.trees() {
        for v in tree.nodes() {
            let b = tree.branching(v);
            if sums.len() <= b {
                sums.resize(b + 1, [0.0; 6]);
                counts.resize(b + 1, 0);
            }
            counts[b] += 1;
            let by_size = si_core::extract::count_by_size(tree, v, 5);
            for ss in 2..=5 {
                sums[b][ss] += by_size[ss] as f64;
            }
        }
    }
    for b in 0..sums.len() {
        if counts[b] == 0 {
            continue;
        }
        let avg = |ss: usize| sums[b][ss] / counts[b] as f64;
        println!(
            "{b:>9}  {:>12}  {:>7.2}  {:>7.2}  {:>7.2}  {:>7.2}",
            counts[b],
            avg(2),
            avg(3),
            avg(4),
            avg(5)
        );
    }
}

// --------------------------------------------------------------------
// Figures 8, 9, 10 and Table 1: the index construction grid
// --------------------------------------------------------------------

/// One cell of the build grid.
pub struct GridCell {
    /// Corpus size in sentences.
    pub sentences: usize,
    /// Maximum subtree size.
    pub mss: usize,
    /// Coding scheme.
    pub coding: Coding,
    /// Build statistics.
    pub stats: si_core::IndexStats,
}

/// Builds the (size × mss × coding) grid once; Figures 8–10 and Table 1
/// all read from it.
pub fn run_index_grid(scale: Scale) -> Vec<GridCell> {
    let work = Workdir::new("grid");
    let sizes = scale.grid_sizes();
    let max = *sizes.last().unwrap();
    let big = corpus(max);
    let mut cells = Vec::new();
    for &n in &sizes {
        let trees = &big.trees()[..n];
        for mss in 1..=5 {
            for coding in Coding::ALL {
                let dir = work.path(&format!("{n}-{mss}-{coding:?}"));
                let index = SubtreeIndex::build(
                    &dir,
                    trees,
                    big.interner(),
                    IndexOptions::new(mss, coding),
                )
                .expect("grid build");
                cells.push(GridCell {
                    sentences: n,
                    mss,
                    coding,
                    stats: index.stats(),
                });
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
    cells
}

fn grid_table(cells: &[GridCell], what: &str, f: impl Fn(&GridCell) -> String) {
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.sentences).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &n in &sizes {
        println!("\n## {n} sentences — {what}");
        println!(
            "{:<18} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "coding", "mss=1", "mss=2", "mss=3", "mss=4", "mss=5"
        );
        for coding in Coding::ALL {
            let mut row = format!("{:<18}", coding.name());
            for mss in 1..=5 {
                let cell = cells
                    .iter()
                    .find(|c| c.sentences == n && c.mss == mss && c.coding == coding)
                    .expect("grid cell");
                row.push_str(&format!(" {:>12}", f(cell)));
            }
            println!("{row}");
        }
    }
}

/// Prints Figure 8 (index size in bytes).
pub fn fig8(cells: &[GridCell]) {
    println!("# Figure 8: subtree index size (bytes)");
    grid_table(cells, "index size (bytes)", |c| {
        c.stats.index_bytes.to_string()
    });
}

/// Prints Figure 9 (total number of postings).
pub fn fig9(cells: &[GridCell]) {
    println!("# Figure 9: total number of postings");
    grid_table(cells, "postings", |c| c.stats.postings.to_string());
}

/// Prints Figure 10 (index construction time).
pub fn fig10(cells: &[GridCell]) {
    println!("# Figure 10: index construction time (seconds)");
    grid_table(cells, "build seconds", |c| {
        format!("{:.2}", c.stats.build_seconds)
    });
}

/// Prints Table 1 (size ratio mss=5 / mss=1 per coding).
pub fn tab1(cells: &[GridCell]) {
    println!("# Table 1: index size ratio, mss=5 over mss=1");
    println!(
        "{:<10} {:>14} {:>12} {:>18}",
        "sentences", "filter-based", "root-split", "subtree interval"
    );
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.sentences).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &n in &sizes {
        let ratio = |coding: Coding| -> f64 {
            let at = |mss: usize| {
                cells
                    .iter()
                    .find(|c| c.sentences == n && c.mss == mss && c.coding == coding)
                    .map(|c| c.stats.index_bytes as f64)
                    .unwrap_or(f64::NAN)
            };
            at(5) / at(1)
        };
        println!(
            "{n:<10} {:>14.1} {:>12.1} {:>18.1}",
            ratio(Coding::FilterBased),
            ratio(Coding::RootSplit),
            ratio(Coding::SubtreeInterval)
        );
    }
}

// --------------------------------------------------------------------
// Figures 11 and 12: query runtime grids
// --------------------------------------------------------------------

/// One timed query evaluation.
pub struct QueryRun {
    /// Coding scheme used.
    pub coding: Coding,
    /// Index `mss`.
    pub mss: usize,
    /// Query size (nodes).
    pub query_size: usize,
    /// Matches found.
    pub matches: usize,
    /// Mean runtime in seconds.
    pub seconds: f64,
}

/// Runs the full WH + FB workload against every (coding, mss) index.
pub fn run_query_grid(scale: Scale) -> Vec<QueryRun> {
    let work = Workdir::new("qgrid");
    let n = scale.query_corpus();
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let queries: Vec<&Query> = wh
        .iter()
        .map(|(_, q)| q)
        .chain(fb.iter().map(|(_, _, q)| q))
        .collect();
    let mut runs = Vec::new();
    for mss in 1..=5 {
        for coding in Coding::ALL {
            let dir = work.path(&format!("{mss}-{coding:?}"));
            let index = SubtreeIndex::build(
                &dir,
                big.trees(),
                big.interner(),
                IndexOptions::new(mss, coding),
            )
            .expect("query grid build");
            for q in &queries {
                let reps = scale.reps();
                let mut total = 0.0;
                let mut matches = 0;
                for _ in 0..reps {
                    let (result, secs) = time(|| index.evaluate(q).expect("evaluate"));
                    matches = result.len();
                    total += secs;
                }
                runs.push(QueryRun {
                    coding,
                    mss,
                    query_size: q.len(),
                    matches,
                    seconds: total / reps as f64,
                });
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    runs
}

/// Prints Figure 11: average runtime binned by number of matches.
pub fn fig11(runs: &[QueryRun]) {
    println!("# Figure 11: avg query runtime (s) by number of matches");
    let bins: [(&str, usize, usize); 5] = [
        ("<10", 0, 10),
        ("10-100", 10, 100),
        ("100-1k", 100, 1_000),
        ("1k-10k", 1_000, 10_000),
        (">10k", 10_000, usize::MAX),
    ];
    for mss in 1..=5 {
        println!("\n## mss = {mss}");
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "coding", "<10", "10-100", "100-1k", "1k-10k", ">10k"
        );
        for coding in Coding::ALL {
            let mut row = format!("{:<18}", coding.name());
            for (_, lo, hi) in bins {
                let sel: Vec<&QueryRun> = runs
                    .iter()
                    .filter(|r| {
                        r.coding == coding && r.mss == mss && r.matches >= lo && r.matches < hi
                    })
                    .collect();
                if sel.is_empty() {
                    row.push_str(&format!(" {:>10}", "-"));
                } else {
                    let avg = sel.iter().map(|r| r.seconds).sum::<f64>() / sel.len() as f64;
                    row.push_str(&format!(" {avg:>10.4}"));
                }
            }
            println!("{row}");
        }
    }
}

/// Prints Figure 12: average runtime by query size (queries with ≥ 100
/// matches, as in the paper).
pub fn fig12(runs: &[QueryRun]) {
    println!("# Figure 12: avg query runtime (s) by query size (queries with >=100 matches)");
    for mss in 1..=5 {
        println!("\n## mss = {mss}");
        print!("{:<18}", "coding");
        for size in 1..=12 {
            print!(" {size:>8}");
        }
        println!();
        for coding in Coding::ALL {
            print!("{:<18}", coding.name());
            for size in 1..=12 {
                let sel: Vec<&QueryRun> = runs
                    .iter()
                    .filter(|r| {
                        r.coding == coding
                            && r.mss == mss
                            && r.query_size == size
                            && r.matches >= 100
                    })
                    .collect();
                if sel.is_empty() {
                    print!(" {:>8}", "-");
                } else {
                    let avg = sel.iter().map(|r| r.seconds).sum::<f64>() / sel.len() as f64;
                    print!(" {avg:>8.4}");
                }
            }
            println!();
        }
    }
}

// --------------------------------------------------------------------
// Table 2: comparison with ATreeGrep and the frequency-based approach
// --------------------------------------------------------------------

/// Prints Table 2: average runtime of the FB query classes under
/// root-split SI (mss=3), ATreeGrep and FB(0.1%/1%/10%).
pub fn tab2(scale: Scale) {
    println!("# Table 2: avg runtime (s) per FB query class");
    let work = Workdir::new("tab2");
    let n = scale.query_corpus();
    let big = corpus(n);
    let (_, fb) = workload(&big, 200);

    let dir = work.path("rs3");
    let rs = SubtreeIndex::build(
        &dir,
        big.trees(),
        big.interner(),
        IndexOptions::new(3, Coding::RootSplit),
    )
    .expect("rs build");
    let atg = ATreeGrep::build(big.trees());
    let fractions = [0.001, 0.01, 0.1];
    let freq_indexes: Vec<FreqIndex<'_>> = fractions
        .iter()
        .map(|&fraction| {
            FreqIndex::build(
                big.trees(),
                si_baselines::FreqIndexOptions { mss: 3, fraction },
            )
        })
        .collect();

    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "class", "RS", "ATG", "FB(0.1%)", "FB(1%)", "FB(10%)"
    );
    let reps = scale.reps();
    for class in FbClass::ALL {
        let queries: Vec<&Query> = fb
            .iter()
            .filter(|(c, _, _)| *c == class)
            .map(|(_, _, q)| q)
            .collect();
        let avg_of = |mut f: Box<dyn FnMut(&Query)>| -> f64 {
            let (_, secs) = time(|| {
                for _ in 0..reps {
                    for q in &queries {
                        f(q);
                    }
                }
            });
            secs / (reps * queries.len()) as f64
        };
        let rs_t = avg_of(Box::new(|q| {
            rs.evaluate(q).expect("rs evaluate");
        }));
        let atg_t = avg_of(Box::new(|q| {
            atg.evaluate(q);
        }));
        let fb_t: Vec<f64> = freq_indexes
            .iter()
            .map(|idx| {
                avg_of(Box::new(|q| {
                    idx.evaluate(q);
                }))
            })
            .collect();
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            class.to_string(),
            rs_t,
            atg_t,
            fb_t[0],
            fb_t[1],
            fb_t[2]
        );
    }
}

// --------------------------------------------------------------------
// Figure 13: scalability with corpus size
// --------------------------------------------------------------------

/// Prints Figure 13: average FB-workload runtime vs corpus size,
/// `mss = 3`, all codings.
pub fn fig13(scale: Scale) {
    println!("# Figure 13: avg query runtime (s) vs corpus size, mss=3");
    println!(
        "{:<10} {:>14} {:>12} {:>18}",
        "sentences", "filter-based", "root-split", "subtree interval"
    );
    let work = Workdir::new("fig13");
    let sizes = scale.fig13_sizes();
    let max = *sizes.last().unwrap();
    let big = corpus(max);
    let (_, fb) = workload(&big, 200);
    let queries: Vec<&Query> = fb.iter().map(|(_, _, q)| q).collect();
    let reps = scale.reps();
    for &n in &sizes {
        let trees = &big.trees()[..n];
        let mut row = format!("{n:<10}");
        for coding in [
            Coding::FilterBased,
            Coding::RootSplit,
            Coding::SubtreeInterval,
        ] {
            let dir = work.path(&format!("{n}-{coding:?}"));
            let index =
                SubtreeIndex::build(&dir, trees, big.interner(), IndexOptions::new(3, coding))
                    .expect("fig13 build");
            let (_, secs) = time(|| {
                for _ in 0..reps {
                    for q in &queries {
                        index.evaluate(q).expect("evaluate");
                    }
                }
            });
            let avg = secs / (reps * queries.len()) as f64;
            let width = match coding {
                Coding::FilterBased => 14,
                Coding::RootSplit => 12,
                Coding::SubtreeInterval => 18,
            };
            row.push_str(&format!(" {avg:>width$.4}"));
            std::fs::remove_dir_all(&dir).ok();
        }
        println!("{row}");
    }
}

// --------------------------------------------------------------------
// Table 3: number of joins per WH group
// --------------------------------------------------------------------

/// Prints Table 3: average joins per WH query group for root-split
/// (`minRC`) vs subtree-interval (`optimalCover`) covers, mss 2–5.
pub fn tab3() {
    println!("# Table 3: avg number of joins over the WH query set");
    println!("(r = root-split / minRC, s = subtree interval / optimalCover)");
    let mut interner = si_parsetree::LabelInterner::new();
    let wh = wh_query_set(&mut interner);
    print!("{:<8}", "group");
    for mss in 2..=5 {
        print!("  r(mss={mss}) s(mss={mss})");
    }
    println!();
    for group in WhGroup::ALL {
        let queries: Vec<&Query> = wh
            .iter()
            .filter(|q| q.group == group)
            .map(|q| &q.query)
            .collect();
        print!("{:<8}", group.to_string());
        for mss in 2..=5 {
            let avg = |covers: &dyn Fn(&Query) -> usize| -> f64 {
                queries.iter().map(|q| covers(q) as f64).sum::<f64>() / queries.len() as f64
            };
            let r = avg(&|q| minrc(q, mss).num_joins());
            let s = avg(&|q| optimal_cover(q, mss).num_joins());
            print!("  {r:>9.2} {s:>9.2}");
        }
        println!();
    }
}

// --------------------------------------------------------------------
// Streaming-executor ablation: BENCH_streaming.json
// --------------------------------------------------------------------

/// One executor's measurement of one query.
#[derive(Debug, Clone, Copy)]
pub struct ExecMeasure {
    /// Mean wall-clock seconds over `Scale::reps()` runs.
    pub seconds: f64,
    /// Peak resident posting-derived bytes (`EvalStats::peak_posting_bytes`).
    pub peak_posting_bytes: usize,
    /// Postings decoded.
    pub postings_fetched: usize,
}

/// Streaming vs materialized on one query.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Query text.
    pub name: String,
    /// Coding scheme measured.
    pub coding: Coding,
    /// Match count (identical across executors by construction).
    pub matches: usize,
    /// Streaming pipeline measurement.
    pub streaming: ExecMeasure,
    /// Legacy materializing evaluator measurement.
    pub materialized: ExecMeasure,
}

fn measure(
    index: &SubtreeIndex,
    q: &Query,
    reps: usize,
) -> (Vec<(si_parsetree::TreeId, u32)>, ExecMeasure) {
    let mut seconds = 0.0;
    let mut last = None;
    for _ in 0..reps {
        let (result, secs) = time(|| index.evaluate(q).expect("evaluate"));
        seconds += secs;
        last = Some(result);
    }
    let result = last.expect("at least one rep");
    let measure = ExecMeasure {
        seconds: seconds / reps as f64,
        peak_posting_bytes: result.stats.peak_posting_bytes,
        postings_fetched: result.stats.postings_fetched,
    };
    (result.matches, measure)
}

/// Runs the executor ablation: every workload query under both
/// executors, asserting identical match sets (a live equivalence check)
/// and recording latency plus peak resident posting bytes.
pub fn run_streaming_ablation(scale: Scale) -> Vec<AblationRow> {
    let work = Workdir::new("streamabl");
    let n = match scale {
        Scale::Small => 5_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let queries: Vec<(String, &Query)> = wh
        .iter()
        .map(|(name, q)| (name.clone(), q))
        .chain(fb.iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    let reps = scale.reps();
    let mut rows = Vec::new();
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let dir = work.path(&format!("abl-{coding:?}"));
        let mut index = SubtreeIndex::build(
            &dir,
            big.trees(),
            big.interner(),
            IndexOptions::new(3, coding),
        )
        .expect("ablation build");
        for (name, q) in &queries {
            index.set_exec_mode(si_core::ExecMode::Streaming);
            let (m_s, streaming) = measure(&index, q, reps);
            index.set_exec_mode(si_core::ExecMode::Materialized);
            let (m_m, materialized) = measure(&index, q, reps);
            assert_eq!(
                m_s, m_m,
                "executor match-set mismatch on {name} under {coding}"
            );
            rows.push(AblationRow {
                name: name.clone(),
                coding,
                matches: m_s.len(),
                streaming,
                materialized,
            });
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    rows
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Folds per-query seconds through the shared `si_obs` log-linear
/// histogram — the same readout the query service prints — so every
/// `BENCH_*.json` reports latency quantiles with identical bucket
/// semantics (~3% wide buckets; quantiles are bucket midpoints).
pub fn latency_quantiles(seconds: impl IntoIterator<Item = f64>) -> HistogramSummary {
    let h = Histogram::new();
    for s in seconds {
        h.record_secs(s);
    }
    h.summary()
}

/// Renders a latency summary as a JSON object fragment (milliseconds).
fn quantiles_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}, \
         \"p999_ms\": {:.4}, \"max_ms\": {:.4}}}",
        s.count,
        s.p50 as f64 / 1e6,
        s.p90 as f64 / 1e6,
        s.p99 as f64 / 1e6,
        s.p999 as f64 / 1e6,
        s.max as f64 / 1e6,
    )
}

/// Prints one `label: p50 | p90 | p99 | p999` latency line.
fn print_quantiles(label: &str, s: &HistogramSummary) {
    println!(
        "{label}: p50 {:.3} ms | p90 {:.3} ms | p99 {:.3} ms | p999 {:.3} ms ({} samples)",
        s.p50 as f64 / 1e6,
        s.p90 as f64 / 1e6,
        s.p99 as f64 / 1e6,
        s.p999 as f64 / 1e6,
        s.count
    );
}

/// Prints the ablation summary and writes `BENCH_streaming.json` into
/// the current directory so future PRs have a perf trajectory to diff
/// against.
pub fn emit_streaming_ablation(scale: Scale, rows: &[AblationRow]) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"queries\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"coding\": \"{}\", \"matches\": {}, \
             \"streaming\": {{\"seconds\": {:.6}, \"peak_posting_bytes\": {}, \"postings_fetched\": {}}}, \
             \"materialized\": {{\"seconds\": {:.6}, \"peak_posting_bytes\": {}, \"postings_fetched\": {}}}}}{}\n",
            json_escape(&r.name),
            r.coding.name(),
            r.matches,
            r.streaming.seconds,
            r.streaming.peak_posting_bytes,
            r.streaming.postings_fetched,
            r.materialized.seconds,
            r.materialized.peak_posting_bytes,
            r.materialized.postings_fetched,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");

    // Summary per coding: mean latency and byte-footprint wins.
    println!("# Executor ablation: streaming vs materialized (peak resident posting bytes)");
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "coding", "queries", "str ms", "mat ms", "str KiB", "mat KiB", "<50% B"
    );
    let mut summaries = Vec::new();
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let sel: Vec<&AblationRow> = rows.iter().filter(|r| r.coding == coding).collect();
        if sel.is_empty() {
            continue;
        }
        let mean = |f: &dyn Fn(&AblationRow) -> f64| -> f64 {
            sel.iter().map(|r| f(r)).sum::<f64>() / sel.len() as f64
        };
        let s_ms = mean(&|r| r.streaming.seconds) * 1e3;
        let m_ms = mean(&|r| r.materialized.seconds) * 1e3;
        let s_kib = mean(&|r| r.streaming.peak_posting_bytes as f64) / 1024.0;
        let m_kib = mean(&|r| r.materialized.peak_posting_bytes as f64) / 1024.0;
        let below_half = sel
            .iter()
            .filter(|r| {
                r.materialized.peak_posting_bytes > 0
                    && (r.streaming.peak_posting_bytes as f64)
                        < 0.5 * r.materialized.peak_posting_bytes as f64
            })
            .count();
        println!(
            "{:<18} {:>8} {:>12.4} {:>12.4} {:>12.1} {:>12.1} {:>10}",
            coding.name(),
            sel.len(),
            s_ms,
            m_ms,
            s_kib,
            m_kib,
            below_half
        );
        summaries.push(format!(
            "    {{\"coding\": \"{}\", \"queries\": {}, \"streaming_mean_ms\": {:.4}, \
             \"materialized_mean_ms\": {:.4}, \"streaming_mean_peak_bytes\": {:.0}, \
             \"materialized_mean_peak_bytes\": {:.0}, \"queries_below_half_bytes\": {}}}",
            coding.name(),
            sel.len(),
            s_ms,
            m_ms,
            s_kib * 1024.0,
            m_kib * 1024.0,
            below_half
        ));
    }
    let stream_q = latency_quantiles(rows.iter().map(|r| r.streaming.seconds));
    let mat_q = latency_quantiles(rows.iter().map(|r| r.materialized.seconds));
    print_quantiles("streaming latency", &stream_q);
    print_quantiles("materialized latency", &mat_q);
    json.push_str(&format!(
        "  \"latency_quantiles\": {{\"streaming\": {}, \"materialized\": {}}},\n",
        quantiles_json(&stream_q),
        quantiles_json(&mat_q)
    ));
    json.push_str("  \"summary\": [\n");
    json.push_str(&summaries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_streaming.json", json)?;
    println!(
        "wrote BENCH_streaming.json ({} query measurements)",
        rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Query-service throughput: BENCH_service.json
// --------------------------------------------------------------------

/// One query's figures under both serving modes.
#[derive(Debug, Clone)]
pub struct ServiceBenchRow {
    /// Query text.
    pub name: String,
    /// Match count (asserted identical between modes).
    pub matches: usize,
    /// Mean seconds through the sequential streaming executor.
    pub sequential_seconds: f64,
    /// Mean in-worker latency through the batched service.
    pub service_seconds: f64,
}

/// Aggregate figures of [`run_service_bench`].
#[derive(Debug)]
pub struct ServiceBenchReport {
    /// Per-query rows.
    pub rows: Vec<ServiceBenchRow>,
    /// Worker threads used by the service.
    pub threads: usize,
    /// Repetitions of the full workload per mode.
    pub reps: usize,
    /// Queries per second issuing one at a time (PR 1 path).
    pub qps_sequential: f64,
    /// Queries per second through batched shared-scan execution.
    pub qps_service: f64,
    /// `qps_service / qps_sequential`.
    pub speedup: f64,
    /// Block-cache counters after the service runs.
    pub cache: si_core::BlockCacheStats,
    /// Cover keys shared per batch (from the final batch report).
    pub shared_keys: usize,
}

/// Benchmarks the concurrent query service against issuing the same
/// workload one query at a time through the PR 1 streaming executor,
/// asserting identical match sets per query (a live equivalence check).
pub fn run_service_bench(scale: Scale, threads: usize) -> ServiceBenchReport {
    use si_service::{QueryService, ServiceConfig};

    let work = Workdir::new("service");
    let n = match scale {
        Scale::Small => 5_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let queries: Vec<(String, Query)> = wh
        .into_iter()
        .chain(fb.into_iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    // Throughput is a steady-state figure; use more reps than the
    // latency experiments so scheduler noise averages out (both modes
    // get the same count).
    let reps = scale.reps().max(5);
    let index = std::sync::Arc::new(
        SubtreeIndex::build(
            &work.path("idx"),
            big.trees(),
            big.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .expect("service bench build"),
    );

    // Sequential baseline: the same queries, one at a time. One untimed
    // warmup pass per mode (standard steady-state methodology — both
    // modes get it; it warms the pager here and the block cache below).
    let mut seq_secs = vec![0.0f64; queries.len()];
    let mut seq_matches: Vec<Vec<(si_parsetree::TreeId, u32)>> = vec![Vec::new(); queries.len()];
    for (i, (_, q)) in queries.iter().enumerate() {
        seq_matches[i] = index.evaluate(q).expect("sequential warmup").matches;
    }
    let (_, seq_wall) = time(|| {
        for _ in 0..reps {
            for (i, (_, q)) in queries.iter().enumerate() {
                let (result, secs) = time(|| index.evaluate(q).expect("sequential evaluate"));
                seq_secs[i] += secs;
                assert_eq!(result.matches, seq_matches[i], "unstable sequential result");
            }
        }
    });

    // Batched service: same workload, same rep count, same warmup.
    let service = QueryService::new(
        index.clone(),
        ServiceConfig {
            threads,
            ..ServiceConfig::default()
        },
    );
    let query_refs: Vec<Query> = queries.iter().map(|(_, q)| q.clone()).collect();
    let mut svc_secs = vec![0.0f64; queries.len()];
    let mut shared_keys = 0usize;
    service.run_batch(&query_refs).expect("service warmup");
    let (_, svc_wall) = time(|| {
        for _ in 0..reps {
            let report = service.run_batch(&query_refs).expect("service batch");
            shared_keys = report.shared_keys;
            for (i, outcome) in report.outcomes.iter().enumerate() {
                svc_secs[i] += outcome.seconds;
                assert_eq!(
                    outcome.result.matches, seq_matches[i],
                    "service match-set mismatch on {}",
                    queries[i].0
                );
            }
        }
    });

    let total = (reps * queries.len()) as f64;
    let qps_sequential = total / seq_wall;
    let qps_service = total / svc_wall;
    let rows = queries
        .iter()
        .enumerate()
        .map(|(i, (name, _))| ServiceBenchRow {
            name: name.clone(),
            matches: seq_matches[i].len(),
            sequential_seconds: seq_secs[i] / reps as f64,
            service_seconds: svc_secs[i] / reps as f64,
        })
        .collect();
    ServiceBenchReport {
        rows,
        threads,
        reps,
        qps_sequential,
        qps_service,
        speedup: qps_service / qps_sequential,
        cache: service.cache_stats(),
        shared_keys,
    }
}

/// Prints the service throughput summary and writes `BENCH_service.json`
/// into the current directory.
pub fn emit_service_bench(scale: Scale, report: &ServiceBenchReport) -> std::io::Result<()> {
    println!("# Query service: batched shared-scan execution vs one-at-a-time");
    println!(
        "{} queries x {} reps, {} threads, seed {:#x}",
        report.rows.len(),
        report.reps,
        report.threads,
        corpus_seed()
    );
    println!(
        "sequential {:.0} QPS | service {:.0} QPS | speedup {:.2}x",
        report.qps_sequential, report.qps_service, report.speedup
    );
    println!(
        "block cache: {:.1}% hit rate ({} hits / {} misses, {} evictions, peak {} KiB), {} shared scans/batch",
        report.cache.hit_rate() * 100.0,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.peak_bytes / 1024,
        report.shared_keys
    );
    let seq_q = latency_quantiles(report.rows.iter().map(|r| r.sequential_seconds));
    let svc_q = latency_quantiles(report.rows.iter().map(|r| r.service_seconds));
    print_quantiles("sequential latency", &seq_q);
    print_quantiles("service latency", &svc_q);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"coding\": \"root-split\",\n  \
         \"seed\": {},\n  \"threads\": {},\n  \"reps\": {},\n  \
         \"qps_sequential\": {:.2},\n  \"qps_service\": {:.2},\n  \"speedup\": {:.3},\n  \
         \"cache_hit_rate\": {:.4},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"cache_evictions\": {},\n  \"cache_peak_bytes\": {},\n  \"shared_keys\": {},\n  \
         \"latency_quantiles\": {{\"sequential\": {}, \"service\": {}}},\n  \
         \"queries\": [\n",
        corpus_seed(),
        report.threads,
        report.reps,
        report.qps_sequential,
        report.qps_service,
        report.speedup,
        report.cache.hit_rate(),
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.peak_bytes,
        report.shared_keys,
        quantiles_json(&seq_q),
        quantiles_json(&svc_q),
    ));
    for (i, r) in report.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"matches\": {}, \"sequential_ms\": {:.4}, \
             \"service_ms\": {:.4}}}{}\n",
            json_escape(&r.name),
            r.matches,
            r.sequential_seconds * 1e3,
            r.service_seconds * 1e3,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_service.json", json)?;
    println!(
        "wrote BENCH_service.json ({} query measurements)",
        report.rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Planner A/B: cost-based vs byte-ordered — BENCH_planner.json
// --------------------------------------------------------------------

/// One query's figures under both planner modes.
#[derive(Debug, Clone)]
pub struct PlannerBenchRow {
    /// Query text.
    pub name: String,
    /// Coding scheme measured.
    pub coding: Coding,
    /// Match count (asserted identical between modes).
    pub matches: usize,
    /// Mean seconds under PR 1's byte-length ordering.
    pub byte_seconds: f64,
    /// Mean seconds under the cost-based planner (stats segment).
    pub cost_seconds: f64,
    /// Whether the cost-based run proved the result empty from
    /// disjoint per-key tid ranges without opening a posting list.
    pub range_pruned: bool,
}

/// Aggregate figures of [`run_planner_bench`].
#[derive(Debug)]
pub struct PlannerBenchReport {
    /// Per-query rows across all codings.
    pub rows: Vec<PlannerBenchRow>,
    /// Timed repetitions per query per mode.
    pub reps: usize,
}

fn measure_planner(
    index: &SubtreeIndex,
    q: &Query,
    mode: si_core::PlannerMode,
) -> (si_core::eval::EvalResult, f64) {
    let ctx = si_core::ExecContext {
        planner: mode,
        ..Default::default()
    };
    let (result, secs) = time(|| index.evaluate_with(q, &ctx).expect("evaluate"));
    (result, secs)
}

/// Renders a canonical key back into query syntax (labels resolved
/// through the corpus interner).
fn render_canon(key: &[u8], interner: &si_parsetree::LabelInterner) -> Option<String> {
    fn go(
        t: &si_core::canonical::CanonTree,
        interner: &si_parsetree::LabelInterner,
        out: &mut String,
    ) {
        out.push_str(interner.resolve(si_parsetree::Label(t.label)));
        for c in &t.children {
            out.push('(');
            go(c, interner, out);
            out.push(')');
        }
    }
    let shape = si_core::canonical::decode_key(key)?;
    let mut out = String::new();
    go(&shape, interner, &mut out);
    Some(out)
}

/// The selective ("sel-") query class: conjunctions of two rare corpus
/// constructions — `S(//X)(//Y)` where `X` and `Y` are singleton index
/// keys (each occurs in exactly one tree) drawn from opposite ends of
/// the tid space. This is the regime §7's selectivity statistics are
/// for: each branch is a real construction of the corpus, but the
/// conjunction is almost always empty and the per-key tid ranges prove
/// it without opening a posting list. Byte ordering cannot see that.
/// Returns up to `n` queries; logs when fewer singleton keys exist.
fn selective_pair_queries(
    index: &SubtreeIndex,
    interner: &mut si_parsetree::LabelInterner,
    n: usize,
) -> Vec<(String, Query)> {
    // Singleton keys of 2–3 nodes, ordered by their single tid.
    let mut singles: Vec<(si_parsetree::TreeId, Vec<u8>)> = Vec::new();
    for entry in index.iter_keys().expect("iter keys") {
        let (key, _) = entry.expect("key entry");
        let size = si_core::canonical::key_size(&key).unwrap_or(0);
        if !(2..=3).contains(&size) {
            continue;
        }
        let stats = index
            .key_stats(&key)
            .expect("key stats")
            .expect("indexed key has stats");
        if stats.distinct_tids == 1 {
            singles.push((stats.first_tid, key));
        }
    }
    singles.sort();
    let mut queries = Vec::new();
    let (mut lo, mut hi) = (0usize, singles.len().saturating_sub(1));
    while queries.len() < n && lo < hi {
        let (tid_a, key_a) = &singles[lo];
        let (tid_b, key_b) = &singles[hi];
        lo += 1;
        hi -= 1;
        if tid_a == tid_b {
            continue; // same tree: ranges overlap, nothing to prove
        }
        let (Some(a), Some(b)) = (render_canon(key_a, interner), render_canon(key_b, interner))
        else {
            continue;
        };
        let text = format!("S(//{a})(//{b})");
        let Ok(q) = si_query::parse_query(&text, interner) else {
            continue;
        };
        queries.push((format!("sel-{}", queries.len()), q));
    }
    if queries.len() < n {
        eprintln!(
            "planner bench: only {} of {n} selective pairs available \
             ({} singleton keys in this corpus)",
            queries.len(),
            singles.len()
        );
    }
    queries
}

/// Runs the planner A/B comparison: every workload query — the
/// standard WH + FB sets plus the selective rare-pair class
/// (`selective_pair_queries`) — under the byte-ordered heuristic
/// (PR 1) and the cost-based planner (this PR's stats segment),
/// interleaved per repetition so cache drift hits both modes equally,
/// asserting identical match sets per query (join order and pruning
/// must never change results — a live equivalence check). Per-query
/// figures are the **minimum** over the timed repetitions, the
/// standard noise-robust estimator for sub-millisecond runs.
pub fn run_planner_bench(scale: Scale) -> PlannerBenchReport {
    use si_core::PlannerMode;

    let work = Workdir::new("planner");
    let n = match scale {
        Scale::Small => 5_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let mut queries: Vec<(String, Query)> = wh
        .into_iter()
        .chain(fb.into_iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    let reps = scale.reps().max(7);
    let mut rows = Vec::new();
    let mut sel_added = false;
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let dir = work.path(&format!("plan-{coding:?}"));
        let index = SubtreeIndex::build(
            &dir,
            big.trees(),
            big.interner(),
            IndexOptions::new(3, coding),
        )
        .expect("planner bench build");
        assert!(index.has_key_stats(), "build must write the stats segment");
        if !sel_added {
            // Canonical keys are coding-independent, so the pairs from
            // the first index serve all three codings.
            let mut interner = index.interner();
            queries.extend(selective_pair_queries(&index, &mut interner, 48));
            sel_added = true;
        }
        for (name, q) in &queries {
            // Warm both paths (pager + stats) before timing.
            let (warm_b, _) = measure_planner(&index, q, PlannerMode::ByteLen);
            let (warm_c, _) = measure_planner(&index, q, PlannerMode::CostBased);
            assert_eq!(
                warm_b.matches, warm_c.matches,
                "planner match-set mismatch on {name} under {coding}"
            );
            let range_pruned = warm_c.stats.range_pruned;
            let mut byte_seconds = f64::INFINITY;
            let mut cost_seconds = f64::INFINITY;
            for _ in 0..reps {
                let (rb, sb) = measure_planner(&index, q, PlannerMode::ByteLen);
                let (rc, sc) = measure_planner(&index, q, PlannerMode::CostBased);
                assert_eq!(rb.matches, rc.matches, "unstable match set on {name}");
                byte_seconds = byte_seconds.min(sb);
                cost_seconds = cost_seconds.min(sc);
            }
            rows.push(PlannerBenchRow {
                name: name.clone(),
                coding,
                matches: warm_c.matches.len(),
                byte_seconds,
                cost_seconds,
                range_pruned,
            });
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    PlannerBenchReport { rows, reps }
}

/// Prints the planner A/B summary and writes `BENCH_planner.json` into
/// the current directory.
pub fn emit_planner_bench(scale: Scale, report: &PlannerBenchReport) -> std::io::Result<()> {
    println!("# Planner A/B: cost-based (stats segment) vs byte-length ordering");
    println!(
        "{} queries x {} reps, seed {:#x}",
        report.rows.len(),
        report.reps,
        corpus_seed()
    );
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>9} {:>8} {:>8} {:>8}",
        "coding", "queries", "byte ms", "cost ms", "speedup", "faster", "slower", "pruned"
    );
    // A query counts as faster/slower only beyond a 5% margin; the
    // rest are ties (sub-millisecond runs are noisy).
    let margin = 0.05;
    let mut summaries = Vec::new();
    let mut total_faster = 0usize;
    let mut total_byte = 0.0;
    let mut total_cost = 0.0;
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let sel: Vec<&PlannerBenchRow> =
            report.rows.iter().filter(|r| r.coding == coding).collect();
        if sel.is_empty() {
            continue;
        }
        let byte_ms: f64 = sel.iter().map(|r| r.byte_seconds).sum::<f64>() * 1e3;
        let cost_ms: f64 = sel.iter().map(|r| r.cost_seconds).sum::<f64>() * 1e3;
        let faster = sel
            .iter()
            .filter(|r| r.cost_seconds < r.byte_seconds * (1.0 - margin))
            .count();
        let slower = sel
            .iter()
            .filter(|r| r.cost_seconds > r.byte_seconds * (1.0 + margin))
            .count();
        let pruned = sel.iter().filter(|r| r.range_pruned).count();
        total_faster += faster;
        total_byte += byte_ms;
        total_cost += cost_ms;
        println!(
            "{:<18} {:>8} {:>12.3} {:>12.3} {:>8.2}x {:>8} {:>8} {:>8}",
            coding.name(),
            sel.len(),
            byte_ms,
            cost_ms,
            byte_ms / cost_ms.max(1e-9),
            faster,
            slower,
            pruned
        );
        summaries.push(format!(
            "    {{\"coding\": \"{}\", \"queries\": {}, \"byte_total_ms\": {:.4}, \
             \"cost_total_ms\": {:.4}, \"speedup\": {:.3}, \"faster\": {}, \
             \"slower\": {}, \"range_pruned\": {}}}",
            coding.name(),
            sel.len(),
            byte_ms,
            cost_ms,
            byte_ms / cost_ms.max(1e-9),
            faster,
            slower,
            pruned
        ));
    }
    let overall_speedup = total_byte / total_cost.max(1e-9);
    let faster_fraction = total_faster as f64 / report.rows.len().max(1) as f64;
    println!(
        "overall: {:.2}x total-time speedup, {}/{} queries ({:.0}%) faster by >{:.0}%",
        overall_speedup,
        total_faster,
        report.rows.len(),
        faster_fraction * 100.0,
        margin * 100.0
    );
    let byte_q = latency_quantiles(report.rows.iter().map(|r| r.byte_seconds));
    let cost_q = latency_quantiles(report.rows.iter().map(|r| r.cost_seconds));
    print_quantiles("byte-ordered latency", &byte_q);
    print_quantiles("cost-based latency", &cost_q);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"seed\": {},\n  \"reps\": {},\n  \
         \"match_sets_identical\": true,\n  \"overall_speedup\": {:.3},\n  \
         \"faster_fraction\": {:.4},\n  \"faster_margin\": {margin},\n  \
         \"latency_quantiles\": {{\"byte\": {}, \"cost\": {}}},\n  \"summary\": [\n",
        corpus_seed(),
        report.reps,
        overall_speedup,
        faster_fraction,
        quantiles_json(&byte_q),
        quantiles_json(&cost_q),
    ));
    json.push_str(&summaries.join(",\n"));
    json.push_str("\n  ],\n  \"queries\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"coding\": \"{}\", \"matches\": {}, \
             \"byte_ms\": {:.4}, \"cost_ms\": {:.4}, \"range_pruned\": {}}}{}\n",
            json_escape(&r.name),
            r.coding.name(),
            r.matches,
            r.byte_seconds * 1e3,
            r.cost_seconds * 1e3,
            r.range_pruned,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_planner.json", json)?;
    println!(
        "wrote BENCH_planner.json ({} query measurements)",
        report.rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Sharded index: parallel build + scatter-gather — BENCH_shard.json
// --------------------------------------------------------------------

/// Aggregate figures of [`run_shard_bench`].
#[derive(Debug)]
pub struct ShardBenchReport {
    /// Shard count of the sharded index.
    pub shards: usize,
    /// Worker threads used by both timed builds.
    pub workers: usize,
    /// Service worker threads.
    pub threads: usize,
    /// Repetitions of the query workload per mode.
    pub reps: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Wall seconds of `SubtreeIndex::build_parallel` (the single-file
    /// parallel build) with `workers` threads.
    pub build_mono_seconds: f64,
    /// Wall seconds of the sharded build (`workers` shard workers).
    pub build_sharded_seconds: f64,
    /// `build_mono_seconds / build_sharded_seconds`.
    pub build_speedup: f64,
    /// QPS issuing the workload one query at a time on the monolith.
    pub qps_sequential: f64,
    /// QPS through the sharded scatter-gather service.
    pub qps_sharded: f64,
    /// `qps_sharded / qps_sequential`.
    pub query_speedup: f64,
    /// Mean per-query worker latency, sequential monolith (ms).
    pub latency_ms_sequential: f64,
    /// Mean per-query worker latency, sharded service (ms).
    pub latency_ms_sharded: f64,
    /// Per-query latency quantiles, sequential monolith (every timed
    /// rep recorded into the shared `si_obs` histogram).
    pub latency_sequential: HistogramSummary,
    /// Per-query latency quantiles, sharded service workers.
    pub latency_sharded: HistogramSummary,
    /// Total shard skips across the workload (one service pass).
    pub shard_skips: u64,
    /// Queries that skipped at least one shard.
    pub queries_with_skips: usize,
    /// Summed per-shard block-cache counters after the service runs.
    pub cache: si_core::BlockCacheStats,
}

/// Benchmarks the sharded subsystem end to end: (1) wall-clock of the
/// tid-partitioned parallel shard build vs the single-file parallel
/// build over the same corpus, and (2) query throughput of the sharded
/// scatter-gather service vs one-at-a-time monolith execution —
/// asserting, per query, that the sharded index returns exactly the
/// monolith's match set (a live equivalence check; any divergence
/// panics the run).
pub fn run_shard_bench(scale: Scale, threads: usize) -> ShardBenchReport {
    use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
    use si_service::{ServiceConfig, ShardedQueryService};

    let work = Workdir::new("shard");
    // Sharding is a corpus-scale feature: below ~10k sentences the
    // monolithic build's aggregation map still fits in cache and the
    // build race is a coin flip; at this size the smaller per-shard
    // maps and sorts win even on one core (and shard workers scale on
    // real multicore).
    let n = match scale {
        Scale::Small => 30_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let queries: Vec<(String, Query)> = wh
        .into_iter()
        .chain(fb.into_iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    let reps = scale.reps().max(5);
    let shards = 4;
    let workers = threads.max(2);
    let options = IndexOptions::new(3, Coding::RootSplit);

    // ---- Build race: single-file parallel vs tid-partitioned shards,
    // same worker count, same corpus. Min-of-reps wall time (the same
    // methodology as the planner bench), with the two builds
    // *interleaved* per rep — and the order within each rep alternating
    // — so time-correlated machine noise and allocator warm-up land on
    // both sides equally; each rep builds into a fresh directory.
    let build_reps = scale.reps().max(7);
    let mut build_mono_seconds = f64::INFINITY;
    let mut build_sharded_seconds = f64::INFINITY;
    let mut mono = None;
    let mut sharded = None;
    let build_mono = |rep: usize| {
        time(|| {
            SubtreeIndex::build_parallel(
                &work.path(&format!("mono-{rep}")),
                big.trees(),
                big.interner(),
                options,
                workers,
            )
            .expect("monolithic parallel build")
        })
    };
    let build_sharded = |rep: usize| {
        time(|| {
            ShardedIndex::build(
                &work.path(&format!("sharded-{rep}")),
                big.trees(),
                big.interner(),
                options,
                ShardedBuildConfig {
                    shards,
                    workers,
                    mode: ShardBuildMode::InMemory,
                },
            )
            .expect("sharded build")
        })
    };
    for rep in 0..build_reps {
        if rep % 2 == 0 {
            let (index, secs) = build_mono(rep);
            build_mono_seconds = build_mono_seconds.min(secs);
            mono = Some(index);
            let (index, secs) = build_sharded(rep);
            build_sharded_seconds = build_sharded_seconds.min(secs);
            sharded = Some(index);
        } else {
            let (index, secs) = build_sharded(rep);
            build_sharded_seconds = build_sharded_seconds.min(secs);
            sharded = Some(index);
            let (index, secs) = build_mono(rep);
            build_mono_seconds = build_mono_seconds.min(secs);
            mono = Some(index);
        }
        // The previous rep's index copies are dead (both handles now
        // point at this rep's); delete them outside the timed closures
        // so disk residency stays at ~2 copies instead of 2×reps —
        // at Paper scale the difference is many GB.
        if rep > 0 {
            std::fs::remove_dir_all(work.path(&format!("mono-{}", rep - 1))).ok();
            std::fs::remove_dir_all(work.path(&format!("sharded-{}", rep - 1))).ok();
        }
    }
    let mono = mono.expect("at least one build rep");
    let sharded = sharded.expect("at least one build rep");
    assert_eq!(sharded.num_trees() as usize, big.trees().len());
    let sharded = std::sync::Arc::new(sharded);

    // ---- Sequential monolith baseline (also the expected answers). ----
    let mut seq_matches: Vec<Vec<(si_parsetree::TreeId, u32)>> = vec![Vec::new(); queries.len()];
    for (i, (_, q)) in queries.iter().enumerate() {
        seq_matches[i] = mono.evaluate(q).expect("sequential warmup").matches;
    }
    let mut seq_secs = 0.0f64;
    let seq_hist = Histogram::new();
    let (_, seq_wall) = time(|| {
        for _ in 0..reps {
            for (i, (_, q)) in queries.iter().enumerate() {
                let (result, secs) = time(|| mono.evaluate(q).expect("sequential evaluate"));
                seq_secs += secs;
                seq_hist.record_secs(secs);
                assert_eq!(result.matches, seq_matches[i], "unstable sequential result");
            }
        }
    });

    // ---- Sharded scatter-gather service, same workload and reps. ----
    let service = ShardedQueryService::new(
        sharded.clone(),
        ServiceConfig {
            threads,
            ..ServiceConfig::default()
        },
    );
    let query_refs: Vec<Query> = queries.iter().map(|(_, q)| q.clone()).collect();
    service.run_batch(&query_refs).expect("service warmup");
    let mut svc_secs = 0.0f64;
    let svc_hist = Histogram::new();
    let mut shard_skips = 0u64;
    let mut queries_with_skips = 0usize;
    let (_, svc_wall) = time(|| {
        for rep in 0..reps {
            let report = service.run_batch(&query_refs).expect("sharded batch");
            for (i, outcome) in report.outcomes.iter().enumerate() {
                svc_secs += outcome.seconds;
                svc_hist.record_secs(outcome.seconds);
                assert_eq!(
                    outcome.result.matches, seq_matches[i],
                    "sharded match-set mismatch on {}",
                    queries[i].0
                );
                if rep == 0 {
                    shard_skips += outcome.result.stats.shards_skipped as u64;
                    if outcome.result.stats.shards_skipped > 0 {
                        queries_with_skips += 1;
                    }
                }
            }
        }
    });

    let total = (reps * queries.len()) as f64;
    ShardBenchReport {
        shards,
        workers,
        threads,
        reps,
        queries: queries.len(),
        build_mono_seconds,
        build_sharded_seconds,
        build_speedup: build_mono_seconds / build_sharded_seconds.max(1e-9),
        qps_sequential: total / seq_wall,
        qps_sharded: total / svc_wall,
        query_speedup: seq_wall / svc_wall.max(1e-9),
        latency_ms_sequential: seq_secs * 1e3 / total,
        latency_ms_sharded: svc_secs * 1e3 / total,
        latency_sequential: seq_hist.summary(),
        latency_sharded: svc_hist.summary(),
        shard_skips,
        queries_with_skips,
        cache: service.cache_stats(),
    }
}

/// Prints the sharded-subsystem summary and writes `BENCH_shard.json`
/// into the current directory.
pub fn emit_shard_bench(scale: Scale, report: &ShardBenchReport) -> std::io::Result<()> {
    println!("# Sharded index: parallel build + scatter-gather service vs monolith");
    println!(
        "{} queries x {} reps, {} shards, {} build workers, {} service threads, seed {:#x}",
        report.queries,
        report.reps,
        report.shards,
        report.workers,
        report.threads,
        corpus_seed()
    );
    println!(
        "build: single-file parallel {:.2} s | {} shards {:.2} s | speedup {:.2}x",
        report.build_mono_seconds,
        report.shards,
        report.build_sharded_seconds,
        report.build_speedup
    );
    println!(
        "query: sequential {:.0} QPS | sharded service {:.0} QPS | speedup {:.2}x",
        report.qps_sequential, report.qps_sharded, report.query_speedup
    );
    println!(
        "shard skips: {} total across {} queries ({} queries skipped >= 1 shard)",
        report.shard_skips, report.queries, report.queries_with_skips
    );
    println!(
        "block caches: {:.1}% hit rate ({} hits / {} misses, {} evictions)",
        report.cache.hit_rate() * 100.0,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions
    );
    print_quantiles("sequential latency", &report.latency_sequential);
    print_quantiles("sharded latency", &report.latency_sharded);

    let json = format!(
        "{{\n  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"coding\": \"root-split\",\n  \
         \"seed\": {},\n  \"shards\": {},\n  \"build_workers\": {},\n  \"threads\": {},\n  \
         \"reps\": {},\n  \"queries\": {},\n  \"match_sets_identical\": true,\n  \
         \"build_mono_parallel_seconds\": {:.4},\n  \"build_sharded_seconds\": {:.4},\n  \
         \"build_speedup\": {:.3},\n  \"qps_sequential\": {:.2},\n  \"qps_sharded\": {:.2},\n  \
         \"query_speedup\": {:.3},\n  \"latency_ms_sequential\": {:.4},\n  \
         \"latency_ms_sharded\": {:.4},\n  \
         \"latency_quantiles\": {{\"sequential\": {}, \"sharded\": {}}},\n  \
         \"shard_skips\": {},\n  \
         \"queries_with_skips\": {},\n  \"cache_hit_rate\": {:.4},\n  \"cache_hits\": {},\n  \
         \"cache_misses\": {},\n  \"cache_evictions\": {}\n}}\n",
        corpus_seed(),
        report.shards,
        report.workers,
        report.threads,
        report.reps,
        report.queries,
        report.build_mono_seconds,
        report.build_sharded_seconds,
        report.build_speedup,
        report.qps_sequential,
        report.qps_sharded,
        report.query_speedup,
        report.latency_ms_sequential,
        report.latency_ms_sharded,
        quantiles_json(&report.latency_sequential),
        quantiles_json(&report.latency_sharded),
        report.shard_skips,
        report.queries_with_skips,
        report.cache.hit_rate(),
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
    );
    std::fs::write("BENCH_shard.json", json)?;
    println!("wrote BENCH_shard.json");
    Ok(())
}

// --------------------------------------------------------------------
// Zero-copy posting pipeline: BENCH_pipeline.json
// --------------------------------------------------------------------

/// One path's measurement of one query in the pipeline bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineMeasure {
    /// Minimum wall-clock seconds over the timed repetitions.
    pub seconds: f64,
    /// Peak resident posting-derived bytes.
    pub peak_posting_bytes: usize,
    /// Postings served as zero-copy borrows out of cached blocks.
    pub postings_borrowed: u64,
    /// Order enforcers avoided (plan preference + run detection).
    pub sort_exchanges_avoided: usize,
}

/// One query's figures across the three posting paths.
#[derive(Debug, Clone)]
pub struct PipelineBenchRow {
    /// Query text.
    pub name: String,
    /// Coding scheme measured.
    pub coding: Coding,
    /// Match count (asserted identical across every configuration).
    pub matches: usize,
    /// The owned pre-refactor baseline: the materializing evaluator
    /// (every posting decoded into an owned `Vec` before the joins).
    pub owned: PipelineMeasure,
    /// Borrow-based streaming without a cache (postings lent out of the
    /// cursor's reusable decode slot).
    pub streaming: PipelineMeasure,
    /// Borrow-based streaming over a pre-warmed block cache (postings
    /// lent straight out of pinned cached blocks — the zero-copy hit
    /// path).
    pub warm: PipelineMeasure,
}

/// Aggregate figures of [`run_pipeline_bench`].
#[derive(Debug)]
pub struct PipelineBenchReport {
    /// Per-query rows across all codings.
    pub rows: Vec<PipelineBenchRow>,
    /// Timed repetitions per query per path.
    pub reps: usize,
    /// Match-set equivalence checks performed (codings × executors ×
    /// planner modes × shard counts, per query).
    pub equivalence_checks: usize,
}

fn pipeline_measure(result: &si_core::eval::EvalResult, seconds: f64, acc: &mut PipelineMeasure) {
    if acc.seconds == 0.0 || seconds < acc.seconds {
        acc.seconds = seconds;
    }
    acc.peak_posting_bytes = acc.peak_posting_bytes.max(result.stats.peak_posting_bytes);
    acc.postings_borrowed = acc.postings_borrowed.max(result.stats.postings_borrowed);
    acc.sort_exchanges_avoided = acc
        .sort_exchanges_avoided
        .max(result.stats.sort_exchanges_avoided);
}

/// Runs the zero-copy pipeline bench: every workload query (WH + FB +
/// the selective rare-pair class) under the owned materializing path,
/// plain borrow-based streaming, and warm-cache zero-copy streaming,
/// with match sets asserted identical across **every** configuration —
/// 3 codings × {materialized, streaming} × {cost-based, byte-ordered}
/// × {monolith, 2-shard} — plus a live check that the sort-free plan
/// rule fires on the interval workload.
pub fn run_pipeline_bench(scale: Scale) -> PipelineBenchReport {
    use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
    use si_core::{BlockCache, BlockCacheConfig, ExecContext, PlannerMode};
    use std::sync::Arc;

    let work = Workdir::new("pipeline");
    let n = match scale {
        Scale::Small => 5_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let mut queries: Vec<(String, Query)> = wh
        .into_iter()
        .chain(fb.into_iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    let reps = scale.reps().max(5);
    let mut rows = Vec::new();
    let mut equivalence_checks = 0usize;
    let mut sel_added = false;
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let dir = work.path(&format!("pipe-{coding:?}"));
        let shard_dir = work.path(&format!("pipe-sh-{coding:?}"));
        let mut index = SubtreeIndex::build(
            &dir,
            big.trees(),
            big.interner(),
            IndexOptions::new(3, coding),
        )
        .expect("pipeline bench build");
        let sharded = ShardedIndex::build(
            &shard_dir,
            big.trees(),
            big.interner(),
            IndexOptions::new(3, coding),
            ShardedBuildConfig {
                shards: 2,
                workers: 2,
                mode: ShardBuildMode::InMemory,
            },
        )
        .expect("pipeline bench sharded build");
        if !sel_added {
            let mut interner = index.interner();
            queries.extend(selective_pair_queries(&index, &mut interner, 48));
            sel_added = true;
        }
        let cache = Arc::new(BlockCache::new(BlockCacheConfig::with_budget(128 << 20)));
        let warm_ctx = ExecContext {
            cache: Some(cache),
            ..Default::default()
        };
        for (name, q) in &queries {
            let mut owned = PipelineMeasure::default();
            let mut streaming = PipelineMeasure::default();
            let mut warm = PipelineMeasure::default();

            // Live equivalence matrix (executors × planners × shards),
            // which doubles as the warmup pass for the timed reps.
            index.set_exec_mode(si_core::ExecMode::Materialized);
            let oracle = index.evaluate(q).expect("owned evaluate").matches;
            index.set_exec_mode(si_core::ExecMode::Streaming);
            for planner in [PlannerMode::CostBased, PlannerMode::ByteLen] {
                let ctx = ExecContext {
                    planner,
                    ..Default::default()
                };
                let got = index.evaluate_with(q, &ctx).expect("streaming evaluate");
                assert_eq!(
                    got.matches, oracle,
                    "divergence: {name} {coding} streaming/{planner:?}"
                );
                equivalence_checks += 1;
                let sh = sharded
                    .evaluate_with_planner(q, planner)
                    .expect("sharded evaluate");
                assert_eq!(
                    sh.matches, oracle,
                    "divergence: {name} {coding} sharded/{planner:?}"
                );
                equivalence_checks += 1;
            }
            let warmed = index.evaluate_with(q, &warm_ctx).expect("cache warmup");
            assert_eq!(warmed.matches, oracle, "divergence: {name} {coding} cached");
            equivalence_checks += 1;

            // Timed repetitions, interleaved so drift hits all paths.
            for _ in 0..reps {
                index.set_exec_mode(si_core::ExecMode::Materialized);
                let (r, secs) = time(|| index.evaluate(q).expect("owned"));
                pipeline_measure(&r, secs, &mut owned);
                index.set_exec_mode(si_core::ExecMode::Streaming);
                let (r, secs) = time(|| index.evaluate(q).expect("streaming"));
                pipeline_measure(&r, secs, &mut streaming);
                let (r, secs) = time(|| index.evaluate_with(q, &warm_ctx).expect("warm"));
                assert_eq!(r.matches, oracle, "divergence: {name} {coding} warm rep");
                pipeline_measure(&r, secs, &mut warm);
            }
            rows.push(PipelineBenchRow {
                name: name.clone(),
                coding,
                matches: oracle.len(),
                owned,
                streaming,
                warm,
            });
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    // The sort-free plan rule must fire on the interval workload (the
    // CI smoke gate): multi-cover interval queries are root-slot
    // drivable, and a refactor that stopped avoiding their sorts would
    // zero this counter.
    let interval_avoided: usize = rows
        .iter()
        .filter(|r| r.coding == Coding::SubtreeInterval)
        .map(|r| r.warm.sort_exchanges_avoided)
        .sum();
    assert!(
        interval_avoided > 0,
        "no sort exchange avoided across the interval workload"
    );
    // Warm zero-copy scans must beat the owned path on peak resident
    // bytes for the interval coding — the refactor's headline claim.
    let (warm_peak, owned_peak) = rows
        .iter()
        .filter(|r| r.coding == Coding::SubtreeInterval)
        .fold((0usize, 0usize), |(w, o), r| {
            (
                w + r.warm.peak_posting_bytes,
                o + r.owned.peak_posting_bytes,
            )
        });
    assert!(
        (warm_peak as f64) < 0.5 * owned_peak as f64,
        "warm interval peak bytes {warm_peak} not below half of owned {owned_peak}"
    );

    PipelineBenchReport {
        rows,
        reps,
        equivalence_checks,
    }
}

/// Prints the pipeline summary and writes `BENCH_pipeline.json` into
/// the current directory.
pub fn emit_pipeline_bench(scale: Scale, report: &PipelineBenchReport) -> std::io::Result<()> {
    println!("# Zero-copy posting pipeline: owned vs borrowed vs warm-cache borrowed");
    println!(
        "{} queries x {} reps, {} equivalence checks, seed {:#x}",
        report.rows.len(),
        report.reps,
        report.equivalence_checks,
        corpus_seed()
    );
    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "coding",
        "queries",
        "owned ms",
        "str ms",
        "warm ms",
        "owned KiB",
        "str KiB",
        "warm KiB",
        "borrowed",
        "avoided"
    );
    let mut summaries = Vec::new();
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let sel: Vec<&PipelineBenchRow> =
            report.rows.iter().filter(|r| r.coding == coding).collect();
        if sel.is_empty() {
            continue;
        }
        let sum = |f: &dyn Fn(&PipelineBenchRow) -> f64| -> f64 { sel.iter().map(|r| f(r)).sum() };
        let owned_ms = sum(&|r| r.owned.seconds) * 1e3;
        let str_ms = sum(&|r| r.streaming.seconds) * 1e3;
        let warm_ms = sum(&|r| r.warm.seconds) * 1e3;
        let owned_kib = sum(&|r| r.owned.peak_posting_bytes as f64) / sel.len() as f64 / 1024.0;
        let str_kib = sum(&|r| r.streaming.peak_posting_bytes as f64) / sel.len() as f64 / 1024.0;
        let warm_kib = sum(&|r| r.warm.peak_posting_bytes as f64) / sel.len() as f64 / 1024.0;
        let borrowed: u64 = sel.iter().map(|r| r.warm.postings_borrowed).sum();
        let avoided: usize = sel.iter().map(|r| r.warm.sort_exchanges_avoided).sum();
        println!(
            "{:<18} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.1} {:>10.1} {:>10.1} {:>9} {:>8}",
            coding.name(),
            sel.len(),
            owned_ms,
            str_ms,
            warm_ms,
            owned_kib,
            str_kib,
            warm_kib,
            borrowed,
            avoided
        );
        summaries.push(format!(
            "    {{\"coding\": \"{}\", \"queries\": {}, \"owned_total_ms\": {:.4}, \
             \"streaming_total_ms\": {:.4}, \"warm_total_ms\": {:.4}, \
             \"owned_mean_peak_bytes\": {:.0}, \"streaming_mean_peak_bytes\": {:.0}, \
             \"warm_mean_peak_bytes\": {:.0}, \"postings_borrowed\": {}, \
             \"sort_exchanges_avoided\": {}}}",
            coding.name(),
            sel.len(),
            owned_ms,
            str_ms,
            warm_ms,
            owned_kib * 1024.0,
            str_kib * 1024.0,
            warm_kib * 1024.0,
            borrowed,
            avoided
        ));
    }

    let owned_q = latency_quantiles(report.rows.iter().map(|r| r.owned.seconds));
    let stream_q = latency_quantiles(report.rows.iter().map(|r| r.streaming.seconds));
    let warm_q = latency_quantiles(report.rows.iter().map(|r| r.warm.seconds));
    print_quantiles("owned latency", &owned_q);
    print_quantiles("streaming latency", &stream_q);
    print_quantiles("warm latency", &warm_q);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"seed\": {},\n  \"reps\": {},\n  \
         \"match_sets_identical\": true,\n  \"equivalence_checks\": {},\n  \
         \"latency_quantiles\": {{\"owned\": {}, \"streaming\": {}, \"warm\": {}}},\n  \
         \"summary\": [\n",
        corpus_seed(),
        report.reps,
        report.equivalence_checks,
        quantiles_json(&owned_q),
        quantiles_json(&stream_q),
        quantiles_json(&warm_q),
    ));
    json.push_str(&summaries.join(",\n"));
    json.push_str("\n  ],\n  \"queries\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"coding\": \"{}\", \"matches\": {}, \
             \"owned\": {{\"ms\": {:.4}, \"peak_bytes\": {}}}, \
             \"streaming\": {{\"ms\": {:.4}, \"peak_bytes\": {}}}, \
             \"warm\": {{\"ms\": {:.4}, \"peak_bytes\": {}, \"borrowed\": {}, \"sorts_avoided\": {}}}}}{}\n",
            json_escape(&r.name),
            r.coding.name(),
            r.matches,
            r.owned.seconds * 1e3,
            r.owned.peak_posting_bytes,
            r.streaming.seconds * 1e3,
            r.streaming.peak_posting_bytes,
            r.warm.seconds * 1e3,
            r.warm.peak_posting_bytes,
            r.warm.postings_borrowed,
            r.warm.sort_exchanges_avoided,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", json)?;
    println!(
        "wrote BENCH_pipeline.json ({} query measurements)",
        report.rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Seekable postings: seeking vs draining executor — BENCH_seek.json
// --------------------------------------------------------------------

/// One query's figures with restart-point seeking on vs off.
#[derive(Debug, Clone)]
pub struct SeekBenchRow {
    /// Query text id.
    pub name: String,
    /// Coding scheme measured.
    pub coding: Coding,
    /// Match count (asserted identical between modes, every rep).
    pub matches: usize,
    /// Mean seconds with seeking disabled (linear drains).
    pub drain_seconds: f64,
    /// Mean seconds with restart-point seeking enabled.
    pub seek_seconds: f64,
    /// Restart-point seeks the seeking run performed.
    pub seeks: u64,
    /// Postings the seeking run jumped without decoding.
    pub postings_skipped: u64,
}

/// Aggregate figures of [`run_seek_bench`].
#[derive(Debug)]
pub struct SeekBenchReport {
    /// Per-query rows across all codings.
    pub rows: Vec<SeekBenchRow>,
    /// Timed repetitions per query per mode.
    pub reps: usize,
}

fn measure_seek(index: &SubtreeIndex, q: &Query, seeks: bool) -> (si_core::eval::EvalResult, f64) {
    let ctx = si_core::ExecContext {
        seeks,
        ..Default::default()
    };
    let (result, secs) = time(|| index.evaluate_with(q, &ctx).expect("evaluate"));
    (result, secs)
}

/// The seek workload: `S(//X)` where `X` is a singleton index key (it
/// occurs in exactly one tree). The cover then mixes the
/// corpus-spanning `S` list with a one-tid key, so the common tid
/// range collapses to that single tree: a seeking executor jumps the
/// big list's restart blocks straight to it, while a draining executor
/// decodes every posting before it. Singletons are sampled evenly
/// across the tid space, so shallow and deep seeks both appear.
fn seek_probe_queries(
    index: &SubtreeIndex,
    interner: &mut si_parsetree::LabelInterner,
    n: usize,
) -> Vec<(String, Query)> {
    let mut singles: Vec<(si_parsetree::TreeId, Vec<u8>)> = Vec::new();
    for entry in index.iter_keys().expect("iter keys") {
        let (key, _) = entry.expect("key entry");
        let size = si_core::canonical::key_size(&key).unwrap_or(0);
        if !(2..=3).contains(&size) {
            continue;
        }
        let stats = index
            .key_stats(&key)
            .expect("key stats")
            .expect("indexed key has stats");
        if stats.distinct_tids == 1 {
            singles.push((stats.first_tid, key));
        }
    }
    singles.sort();
    singles.dedup_by_key(|(tid, _)| *tid);
    let stride = (singles.len() / n.max(1)).max(1);
    let mut queries = Vec::new();
    for (tid, key) in singles.iter().step_by(stride) {
        if queries.len() >= n {
            break;
        }
        let Some(rendered) = render_canon(key, interner) else {
            continue;
        };
        let text = format!("S(//{rendered})");
        let Ok(q) = si_query::parse_query(&text, interner) else {
            continue;
        };
        queries.push((format!("seek-{tid}"), q));
    }
    if queries.len() < n {
        eprintln!(
            "seek bench: only {} of {n} singleton probes available \
             ({} singleton keys in this corpus)",
            queries.len(),
            singles.len()
        );
    }
    queries
}

/// Runs the seek-vs-drain A/B: the selective singleton workload
/// (`seek_probe_queries`) under identical cost-based plans, with
/// restart-point seeking toggled through [`si_core::ExecContext::seeks`]
/// — same join orders, same range seeding decision, only jump-vs-drain
/// differs. Match sets are asserted identical per query on every
/// repetition (live equivalence). The run also asserts the workload
/// actually exercised the machinery: at least one seek happened and a
/// majority of probes skipped postings — the CI smoke job relies on
/// these panics to catch a silently degraded seek path.
pub fn run_seek_bench(scale: Scale) -> SeekBenchReport {
    let work = Workdir::new("seek");
    let n = match scale {
        Scale::Small => 5_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let reps = scale.reps().max(5);
    let mut rows = Vec::new();
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let dir = work.path(&format!("seek-{coding:?}"));
        let index = SubtreeIndex::build(
            &dir,
            big.trees(),
            big.interner(),
            IndexOptions::new(3, coding),
        )
        .expect("seek bench build");
        assert!(
            index.has_skip_headers(),
            "fresh builds must write skip headers"
        );
        let mut interner = index.interner();
        let queries = seek_probe_queries(&index, &mut interner, 40);
        assert!(!queries.is_empty(), "seek bench needs singleton keys");
        for (name, q) in &queries {
            // Warm both paths (pager + stats caches) before timing.
            let (warm_d, _) = measure_seek(&index, q, false);
            let (warm_s, _) = measure_seek(&index, q, true);
            assert_eq!(
                warm_d.matches, warm_s.matches,
                "seek/drain match-set mismatch on {name} under {coding}"
            );
            assert_eq!(warm_d.stats.seeks, 0, "drain run must not seek ({name})");
            let mut drain_seconds = f64::INFINITY;
            let mut seek_seconds = f64::INFINITY;
            for _ in 0..reps {
                let (rd, sd) = measure_seek(&index, q, false);
                let (rs, ss) = measure_seek(&index, q, true);
                assert_eq!(rd.matches, rs.matches, "unstable match set on {name}");
                drain_seconds = drain_seconds.min(sd);
                seek_seconds = seek_seconds.min(ss);
            }
            rows.push(SeekBenchRow {
                name: name.clone(),
                coding,
                matches: warm_s.matches.len(),
                drain_seconds,
                seek_seconds,
                seeks: warm_s.stats.seeks,
                postings_skipped: warm_s.stats.postings_skipped,
            });
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    let total_seeks: u64 = rows.iter().map(|r| r.seeks).sum();
    assert!(total_seeks > 0, "selective workload produced zero seeks");
    let with_skips = rows.iter().filter(|r| r.postings_skipped > 0).count();
    assert!(
        with_skips * 2 >= rows.len(),
        "only {with_skips}/{} probes skipped postings",
        rows.len()
    );
    SeekBenchReport { rows, reps }
}

/// Median over a slice (mean of the middle pair on even lengths).
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Prints the seek A/B summary and writes `BENCH_seek.json` into the
/// current directory.
pub fn emit_seek_bench(scale: Scale, report: &SeekBenchReport) -> std::io::Result<()> {
    println!("# Seekable postings: restart-point seeks vs linear drains");
    println!(
        "{} probes x {} reps, seed {:#x}",
        report.rows.len(),
        report.reps,
        corpus_seed()
    );
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>9} {:>8} {:>12}",
        "coding", "probes", "drain ms", "seek ms", "median x", "seeks", "skipped"
    );
    let mut summaries = Vec::new();
    let mut all_speedups: Vec<f64> = Vec::new();
    for coding in [
        Coding::RootSplit,
        Coding::SubtreeInterval,
        Coding::FilterBased,
    ] {
        let sel: Vec<&SeekBenchRow> = report.rows.iter().filter(|r| r.coding == coding).collect();
        if sel.is_empty() {
            continue;
        }
        let drain_ms: f64 = sel.iter().map(|r| r.drain_seconds).sum::<f64>() * 1e3;
        let seek_ms: f64 = sel.iter().map(|r| r.seek_seconds).sum::<f64>() * 1e3;
        let mut speedups: Vec<f64> = sel
            .iter()
            .map(|r| r.drain_seconds / r.seek_seconds.max(1e-9))
            .collect();
        all_speedups.extend(speedups.iter().copied());
        let med = median(&mut speedups);
        let seeks: u64 = sel.iter().map(|r| r.seeks).sum();
        let skipped: u64 = sel.iter().map(|r| r.postings_skipped).sum();
        println!(
            "{:<18} {:>7} {:>12.3} {:>12.3} {:>8.2}x {:>8} {:>12}",
            coding.name(),
            sel.len(),
            drain_ms,
            seek_ms,
            med,
            seeks,
            skipped
        );
        summaries.push(format!(
            "    {{\"coding\": \"{}\", \"probes\": {}, \"drain_total_ms\": {:.4}, \
             \"seek_total_ms\": {:.4}, \"median_speedup\": {:.3}, \"seeks\": {}, \
             \"postings_skipped\": {}}}",
            coding.name(),
            sel.len(),
            drain_ms,
            seek_ms,
            med,
            seeks,
            skipped
        ));
    }
    let overall_median = median(&mut all_speedups);
    let with_skips = report
        .rows
        .iter()
        .filter(|r| r.postings_skipped > 0)
        .count();
    println!(
        "overall: {:.2}x median speedup, {}/{} probes skipped postings",
        overall_median,
        with_skips,
        report.rows.len()
    );

    let drain_q = latency_quantiles(report.rows.iter().map(|r| r.drain_seconds));
    let seek_q = latency_quantiles(report.rows.iter().map(|r| r.seek_seconds));
    print_quantiles("drain latency", &drain_q);
    print_quantiles("seek latency", &seek_q);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"seed\": {},\n  \"reps\": {},\n  \
         \"match_sets_identical\": true,\n  \"median_speedup\": {:.3},\n  \
         \"probes_with_skips\": {},\n  \"probes\": {},\n  \
         \"latency_quantiles\": {{\"drain\": {}, \"seek\": {}}},\n  \"summary\": [\n",
        corpus_seed(),
        report.reps,
        overall_median,
        with_skips,
        report.rows.len(),
        quantiles_json(&drain_q),
        quantiles_json(&seek_q),
    ));
    json.push_str(&summaries.join(",\n"));
    json.push_str("\n  ],\n  \"queries\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"coding\": \"{}\", \"matches\": {}, \
             \"drain_ms\": {:.4}, \"seek_ms\": {:.4}, \"seeks\": {}, \
             \"postings_skipped\": {}}}{}\n",
            json_escape(&r.name),
            r.coding.name(),
            r.matches,
            r.drain_seconds * 1e3,
            r.seek_seconds * 1e3,
            r.seeks,
            r.postings_skipped,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_seek.json", json)?;
    println!(
        "wrote BENCH_seek.json ({} query measurements)",
        report.rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Observability overhead: BENCH_obs.json
// --------------------------------------------------------------------

/// One query's figures across the three instrumentation states.
#[derive(Debug, Clone)]
pub struct ObsBenchRow {
    /// Query text id.
    pub name: String,
    /// Match count (asserted identical across every state, every rep).
    pub matches: usize,
    /// Min seconds with no `Timings` in the context at all.
    pub baseline_seconds: f64,
    /// Min seconds with a disabled `Timings` attached — the path every
    /// production query pays when tracing is compiled in but off (one
    /// branch per span site).
    pub disabled_seconds: f64,
    /// Min seconds with full span + operator collection.
    pub enabled_seconds: f64,
    /// `Σ stage_total / Σ wall` over the query's enabled reps: the
    /// fraction of measured wall time the stage partition attributes.
    pub stage_ratio: f64,
}

/// Aggregate figures of [`run_obs_bench`].
#[derive(Debug)]
pub struct ObsBenchReport {
    /// Per-query rows (interval coding).
    pub rows: Vec<ObsBenchRow>,
    /// Timed repetitions per query per state.
    pub reps: usize,
    /// `Σ disabled / Σ baseline − 1` over per-query minima.
    pub disabled_overhead: f64,
    /// `Σ enabled / Σ baseline − 1` over per-query minima.
    pub enabled_overhead: f64,
    /// `Σ stage_total / Σ wall` across every enabled rep.
    pub stage_ratio: f64,
    /// Min whole-workload batch seconds through a `QueryService` with
    /// the metrics registry off (`collect_metrics: false`).
    pub registry_off_seconds: f64,
    /// Min whole-workload batch seconds with the registry folding
    /// every query's counters in (the default).
    pub registry_on_seconds: f64,
    /// `registry_on / registry_off − 1`, gated at 2%.
    pub registry_overhead: f64,
}

/// Measures what the PR 7 instrumentation itself costs: every workload
/// query under (a) no `Timings` in the context, (b) a disabled
/// `Timings` attached, and (c) full span + operator collection —
/// interleaved per repetition so cache drift hits all three states
/// equally, with match sets asserted identical on every rep (a live
/// equivalence check). The run is also the CI overhead gate: it panics
/// if the disabled path costs more than 5% over baseline, if the
/// enabled path exceeds a 25% sanity cap, if the stage partition
/// attributes less than 90% (or more than 110%) of the enabled wall,
/// or if the PR 9 metrics registry costs the query service more than
/// 2% of batch throughput over a `collect_metrics: false` twin.
pub fn run_obs_bench(scale: Scale) -> ObsBenchReport {
    use si_core::ExecContext;

    let work = Workdir::new("obs");
    let n = match scale {
        Scale::Small => 5_000,
        Scale::Paper => 100_000,
    };
    let big = corpus(n);
    let (wh, fb) = workload(&big, 200);
    let queries: Vec<(String, Query)> = wh
        .into_iter()
        .chain(fb.into_iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    let reps = scale.reps().max(7);
    let index = std::sync::Arc::new(
        SubtreeIndex::build(
            &work.path("idx"),
            big.trees(),
            big.interner(),
            IndexOptions::new(3, Coding::SubtreeInterval),
        )
        .expect("obs bench build"),
    );

    let mut rows = Vec::new();
    let mut stage_ns_total = 0u128;
    let mut wall_ns_total = 0u128;
    for (name, q) in &queries {
        // Warmup (pager + stats caches) doubling as the oracle.
        let oracle = index.evaluate(q).expect("obs warmup").matches;
        let mut baseline_seconds = f64::INFINITY;
        let mut disabled_seconds = f64::INFINITY;
        let mut enabled_seconds = f64::INFINITY;
        let mut q_stage = 0u128;
        let mut q_wall = 0u128;
        for _ in 0..reps {
            let (r, secs) = time(|| index.evaluate(q).expect("baseline evaluate"));
            assert_eq!(r.matches, oracle, "unstable baseline on {name}");
            baseline_seconds = baseline_seconds.min(secs);

            let t = Timings::new(false);
            let ctx = ExecContext {
                timings: Some(&t),
                ..ExecContext::default()
            };
            let (r, secs) = time(|| index.evaluate_with(q, &ctx).expect("disabled evaluate"));
            assert_eq!(
                r.matches, oracle,
                "disabled instrumentation changed the answer on {name}"
            );
            disabled_seconds = disabled_seconds.min(secs);
            assert_eq!(
                t.snapshot().stage_total(),
                0,
                "disabled timings recorded spans on {name}"
            );

            let t = Timings::new(true);
            let ctx = ExecContext {
                timings: Some(&t),
                ..ExecContext::default()
            };
            let (r, secs) = time(|| index.evaluate_with(q, &ctx).expect("enabled evaluate"));
            assert_eq!(
                r.matches, oracle,
                "enabled instrumentation changed the answer on {name}"
            );
            enabled_seconds = enabled_seconds.min(secs);
            q_stage += t.snapshot().stage_total() as u128;
            q_wall += ((secs * 1e9) as u128).max(1);
        }
        stage_ns_total += q_stage;
        wall_ns_total += q_wall;
        rows.push(ObsBenchRow {
            name: name.clone(),
            matches: oracle.len(),
            baseline_seconds,
            disabled_seconds,
            enabled_seconds,
            stage_ratio: q_stage as f64 / q_wall.max(1) as f64,
        });
    }

    let sum = |f: &dyn Fn(&ObsBenchRow) -> f64| -> f64 { rows.iter().map(f).sum() };
    let baseline = sum(&|r| r.baseline_seconds).max(1e-12);
    let disabled_overhead = sum(&|r| r.disabled_seconds) / baseline - 1.0;
    let enabled_overhead = sum(&|r| r.enabled_seconds) / baseline - 1.0;
    let stage_ratio = stage_ns_total as f64 / wall_ns_total.max(1) as f64;
    assert!(
        disabled_overhead < 0.05,
        "disabled-instrumentation overhead {:.2}% exceeds the 5% gate",
        disabled_overhead * 100.0
    );
    assert!(
        enabled_overhead < 0.25,
        "enabled-instrumentation overhead {:.2}% exceeds the 25% sanity cap",
        enabled_overhead * 100.0
    );
    assert!(
        (0.9..=1.1).contains(&stage_ratio),
        "stage partition attributes {:.1}% of the enabled wall (gate: 90-110%)",
        stage_ratio * 100.0
    );

    // Registry-spine overhead: the same workload batched through two
    // otherwise-identical query services, one folding every query into
    // the process-wide metrics registry (the default) and one with
    // `collect_metrics: false`. Reps interleave so cache drift hits
    // both states equally; min-of-reps total wall is compared.
    let batch: Vec<Query> = queries.iter().map(|(_, q)| q.clone()).collect();
    let service_with = |collect_metrics: bool| {
        si_service::QueryService::new(
            index.clone(),
            si_service::ServiceConfig {
                threads: 4,
                collect_metrics,
                ..si_service::ServiceConfig::default()
            },
        )
    };
    let on = service_with(true);
    let off = service_with(false);
    // Warm both services' caches before timing.
    on.run_batch(&batch).expect("registry warmup (on)");
    off.run_batch(&batch).expect("registry warmup (off)");
    let mut registry_on_seconds = f64::INFINITY;
    let mut registry_off_seconds = f64::INFINITY;
    for _ in 0..reps {
        let (report_on, secs) = time(|| on.run_batch(&batch).expect("registry-on batch"));
        registry_on_seconds = registry_on_seconds.min(secs);
        let (report_off, secs) = time(|| off.run_batch(&batch).expect("registry-off batch"));
        registry_off_seconds = registry_off_seconds.min(secs);
        // Live equivalence check: metrics must never change answers.
        for ((a, b), (_, q)) in report_on
            .outcomes
            .iter()
            .zip(&report_off.outcomes)
            .zip(&queries)
        {
            assert_eq!(
                a.result.matches, b.result.matches,
                "metrics registry changed the answer on {q:?}"
            );
        }
    }
    let registry_overhead = registry_on_seconds / registry_off_seconds.max(1e-12) - 1.0;
    assert!(
        registry_overhead < 0.02,
        "metrics-registry overhead {:.2}% exceeds the 2% gate \
         (on {:.3} ms vs off {:.3} ms)",
        registry_overhead * 100.0,
        registry_on_seconds * 1e3,
        registry_off_seconds * 1e3
    );

    ObsBenchReport {
        rows,
        reps,
        disabled_overhead,
        enabled_overhead,
        stage_ratio,
        registry_off_seconds,
        registry_on_seconds,
        registry_overhead,
    }
}

/// Prints the instrumentation-overhead summary and writes
/// `BENCH_obs.json` into the current directory.
pub fn emit_obs_bench(scale: Scale, report: &ObsBenchReport) -> std::io::Result<()> {
    println!("# Observability overhead: no timings vs disabled vs enabled instrumentation");
    println!(
        "{} queries x {} reps, interval coding, seed {:#x}",
        report.rows.len(),
        report.reps,
        corpus_seed()
    );
    let sum = |f: &dyn Fn(&ObsBenchRow) -> f64| -> f64 { report.rows.iter().map(f).sum() };
    let baseline_ms = sum(&|r| r.baseline_seconds) * 1e3;
    let disabled_ms = sum(&|r| r.disabled_seconds) * 1e3;
    let enabled_ms = sum(&|r| r.enabled_seconds) * 1e3;
    println!(
        "baseline {:.3} ms | disabled {:.3} ms ({:+.2}%) | enabled {:.3} ms ({:+.2}%)",
        baseline_ms,
        disabled_ms,
        report.disabled_overhead * 100.0,
        enabled_ms,
        report.enabled_overhead * 100.0
    );
    println!(
        "stage partition attributes {:.1}% of the enabled wall",
        report.stage_ratio * 100.0
    );
    println!(
        "metrics registry: batch {:.3} ms on vs {:.3} ms off ({:+.2}%, gate < 2%)",
        report.registry_on_seconds * 1e3,
        report.registry_off_seconds * 1e3,
        report.registry_overhead * 100.0
    );
    let base_q = latency_quantiles(report.rows.iter().map(|r| r.baseline_seconds));
    let dis_q = latency_quantiles(report.rows.iter().map(|r| r.disabled_seconds));
    let en_q = latency_quantiles(report.rows.iter().map(|r| r.enabled_seconds));
    print_quantiles("baseline latency", &base_q);
    print_quantiles("disabled latency", &dis_q);
    print_quantiles("enabled latency", &en_q);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"coding\": \"interval\",\n  \
         \"seed\": {},\n  \"reps\": {},\n  \"match_sets_identical\": true,\n  \
         \"baseline_total_ms\": {:.4},\n  \"disabled_total_ms\": {:.4},\n  \
         \"enabled_total_ms\": {:.4},\n  \"disabled_overhead\": {:.5},\n  \
         \"enabled_overhead\": {:.5},\n  \"stage_sum_ratio\": {:.4},\n  \
         \"registry_on_batch_ms\": {:.4},\n  \"registry_off_batch_ms\": {:.4},\n  \
         \"registry_overhead\": {:.5},\n  \"registry_gate\": 0.02,\n  \
         \"latency_quantiles\": {{\"baseline\": {}, \"disabled\": {}, \"enabled\": {}}},\n  \
         \"queries\": [\n",
        corpus_seed(),
        report.reps,
        baseline_ms,
        disabled_ms,
        enabled_ms,
        report.disabled_overhead,
        report.enabled_overhead,
        report.stage_ratio,
        report.registry_on_seconds * 1e3,
        report.registry_off_seconds * 1e3,
        report.registry_overhead,
        quantiles_json(&base_q),
        quantiles_json(&dis_q),
        quantiles_json(&en_q),
    ));
    for (i, r) in report.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"matches\": {}, \"baseline_ms\": {:.4}, \
             \"disabled_ms\": {:.4}, \"enabled_ms\": {:.4}, \"stage_ratio\": {:.4}}}{}\n",
            json_escape(&r.name),
            r.matches,
            r.baseline_seconds * 1e3,
            r.disabled_seconds * 1e3,
            r.enabled_seconds * 1e3,
            r.stage_ratio,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_obs.json", json)?;
    println!(
        "wrote BENCH_obs.json ({} query measurements)",
        report.rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Result cache: Zipfian replay with interleaved ingests
// --------------------------------------------------------------------

/// One skew point of the hit-rate sweep (fresh cache, no ingests).
pub struct CacheSkewRow {
    /// Zipf exponent `s` of the replayed stream.
    pub skew: f64,
    /// Events replayed at this skew.
    pub events: usize,
    /// Fraction of events answered entirely from the cache.
    pub hit_rate: f64,
}

/// Figures of the result-cache replay (`BENCH_cache.json`).
pub struct CacheBenchReport {
    /// Shards of the replayed index.
    pub shards: usize,
    /// Events in the main (ingest-interleaved) stream.
    pub events: usize,
    /// Ingests interleaved into the stream.
    pub ingests: usize,
    /// Distinct queries in the Zipf-ranked pool.
    pub pool: usize,
    /// Whole-query cache hits across the main stream.
    pub result_hits: u64,
    /// Queries that evaluated at least one shard.
    pub result_misses: u64,
    /// Negative-entry probes that answered a shard.
    pub negative_hits: u64,
    /// Cached shard partials reused by miss queries — nonzero proves
    /// an ingest invalidated only the shards it touched.
    pub partial_reuses: u64,
    /// `result_hits / events` of the main stream.
    pub warm_hit_rate: f64,
    /// Median wall milliseconds of miss (evaluating) events.
    pub cold_median_ms: f64,
    /// Median wall milliseconds of whole-query-hit events.
    pub warm_median_ms: f64,
    /// `cold_median_ms / warm_median_ms`.
    pub warm_speedup: f64,
    /// Latency quantiles of miss events.
    pub cold: HistogramSummary,
    /// Latency quantiles of hit events.
    pub warm: HistogramSummary,
    /// Hit rate vs Zipf exponent, fresh cache per point.
    pub skew_rows: Vec<CacheSkewRow>,
    /// Cache counters after the main stream.
    pub cache: si_core::ResultCacheStats,
}

/// Samples ranks `0..k` with `P(r) ∝ 1/(r+1)^s`: precomputed harmonic
/// CDF, binary search per draw.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(k: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for r in 1..=k {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut si_corpus::rng::StdRng) -> usize {
        let total = *self.cdf.last().expect("nonempty rank pool");
        let u = rng.gen::<f64>() * total;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Replays a Zipfian (s = 1.0) query stream with interleaved ingests
/// through the cached sharded service, asserting byte-identical match
/// sets against the uncached scatter-gather evaluator on **every**
/// event. Panics if no shard partial was reused after an ingest, if
/// the warm hit rate falls below the floor, or if whole-query hits are
/// not at least 10x faster than evaluating misses at the median.
pub fn run_cache_bench(scale: Scale, threads: usize) -> CacheBenchReport {
    use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
    use si_core::{ResultCache, ResultCacheConfig};
    use si_corpus::rng::StdRng;
    use si_service::{ServiceConfig, ShardedQueryService};
    use std::sync::Arc;

    let work = Workdir::new("cache");
    let n = match scale {
        Scale::Small => 8_000,
        Scale::Paper => 50_000,
    };
    let big = corpus(n);
    let trees = big.trees();
    let (wh, fb) = workload(&big, 200);
    let pool: Vec<(String, Query)> = wh
        .into_iter()
        .chain(fb.into_iter().map(|(c, s, q)| (format!("fb-{c}-{s}"), q)))
        .collect();
    let mut rng = StdRng::seed_from_u64(corpus_seed() ^ 0xCAC4E);
    // Shuffle the rank→query assignment so Zipf popularity is not
    // correlated with the workload's construction order.
    let mut order: Vec<usize> = (0..pool.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }

    let shards = 4;
    let ingest_target = 3usize;
    let chunk = n / 20;
    let initial = n - ingest_target * chunk;
    let dir = work.path("idx");
    ShardedIndex::build(
        &dir,
        &trees[..initial],
        big.interner(),
        IndexOptions::new(3, Coding::RootSplit),
        ShardedBuildConfig {
            shards,
            workers: threads.max(2),
            mode: ShardBuildMode::InMemory,
        },
    )
    .expect("cache bench build");
    let config = ServiceConfig {
        threads,
        ..ServiceConfig::default()
    };
    let open = |cache: &Arc<ResultCache>| {
        ShardedQueryService::new(
            Arc::new(ShardedIndex::open(&dir).expect("reopen index")),
            config,
        )
        .with_result_cache(cache.clone())
    };

    // ---- Main stream: Zipf(1.0) replay with interleaved ingests. ----
    let events = match scale {
        Scale::Small => 600,
        Scale::Paper => 4_000,
    };
    let zipf = Zipf::new(pool.len(), 1.0);
    let cache = Arc::new(ResultCache::new(ResultCacheConfig::with_budget(32 << 20)));
    let mut service = open(&cache);
    let mut ingested = initial;
    let mut ingests = 0usize;
    let (mut hits, mut misses, mut negs, mut partials) = (0u64, 0u64, 0u64, 0u64);
    let mut cold_seconds: Vec<f64> = Vec::new();
    let mut warm_seconds: Vec<f64> = Vec::new();
    let cold_hist = Histogram::new();
    let warm_hist = Histogram::new();
    for e in 0..events {
        if e > 0 && e % (events / (ingest_target + 1)) == 0 && ingested + chunk <= n {
            let mut writer = ShardedIndex::open(&dir).expect("reopen for ingest");
            writer
                .ingest(&trees[ingested..ingested + chunk], big.interner())
                .expect("interleaved ingest");
            ingested += chunk;
            ingests += 1;
            // The cache outlives the service: reopening over the grown
            // manifest keeps every untouched shard's partials valid.
            service = open(&cache);
        }
        let (name, q) = &pool[order[zipf.sample(&mut rng)]];
        let (report, secs) = time(|| {
            service
                .run_batch(std::slice::from_ref(q))
                .expect("cache replay batch")
        });
        let outcome = &report.outcomes[0];
        // Live oracle: the uncached scatter-gather evaluator over the
        // exact same index state.
        let oracle = service.index().evaluate(q).expect("oracle evaluate");
        assert_eq!(
            outcome.result.matches, oracle.matches,
            "cached replay diverged from the oracle on {name} (event {e})"
        );
        let s = &outcome.result.stats;
        hits += s.result_hits;
        misses += s.result_misses;
        negs += s.negative_hits;
        partials += s.partial_reuses;
        if s.result_hits > 0 {
            warm_seconds.push(secs);
            warm_hist.record_secs(secs);
        } else if s.result_misses > 0 {
            cold_seconds.push(secs);
            cold_hist.record_secs(secs);
        }
        // A cold query every shard skip-pruned involves no evaluation
        // and no cache — it belongs to neither latency population.
    }
    assert_eq!(ingests, ingest_target, "stream too short for the ingests");
    assert!(
        partials > 0,
        "no shard partial was reused across {ingests} ingests — epoch \
         invalidation is discarding untouched shards"
    );
    let warm_hit_rate = hits as f64 / events as f64;
    assert!(
        warm_hit_rate >= 0.4,
        "warm hit rate {warm_hit_rate:.3} below the 0.4 floor on a \
         Zipf(1.0) stream of {events} events over {} queries",
        pool.len()
    );
    let cold_median_ms = median(&mut cold_seconds) * 1e3;
    let warm_median_ms = median(&mut warm_seconds) * 1e3;
    let warm_speedup = cold_median_ms / warm_median_ms.max(1e-9);
    assert!(
        warm_speedup >= 10.0,
        "median warm hit ({warm_median_ms:.4} ms) is only {warm_speedup:.1}x \
         faster than a median evaluating miss ({cold_median_ms:.4} ms); \
         the gate is 10x"
    );

    // ---- Hit rate vs skew: fresh cache per point, no ingests. ----
    let sweep_events = match scale {
        Scale::Small => 400,
        Scale::Paper => 2_000,
    };
    let mut skew_rows = Vec::new();
    for skew in [0.2, 0.6, 1.0, 1.4] {
        let zipf = Zipf::new(pool.len(), skew);
        let fresh = Arc::new(ResultCache::new(ResultCacheConfig::with_budget(32 << 20)));
        let service = open(&fresh);
        let mut skew_hits = 0u64;
        for _ in 0..sweep_events {
            let (_, q) = &pool[order[zipf.sample(&mut rng)]];
            let report = service
                .run_batch(std::slice::from_ref(q))
                .expect("skew sweep batch");
            skew_hits += report.outcomes[0].result.stats.result_hits;
        }
        skew_rows.push(CacheSkewRow {
            skew,
            events: sweep_events,
            hit_rate: skew_hits as f64 / sweep_events as f64,
        });
    }

    CacheBenchReport {
        shards,
        events,
        ingests,
        pool: pool.len(),
        result_hits: hits,
        result_misses: misses,
        negative_hits: negs,
        partial_reuses: partials,
        warm_hit_rate,
        cold_median_ms,
        warm_median_ms,
        warm_speedup,
        cold: cold_hist.summary(),
        warm: warm_hist.summary(),
        skew_rows,
        cache: cache.stats(),
    }
}

/// Prints the result-cache replay summary and writes
/// `BENCH_cache.json` into the current directory.
pub fn emit_cache_bench(scale: Scale, report: &CacheBenchReport) -> std::io::Result<()> {
    println!("# Result cache: Zipfian replay with shard-epoch invalidation");
    println!(
        "{} events over {} queries, {} shards, {} interleaved ingests, seed {:#x}",
        report.events,
        report.pool,
        report.shards,
        report.ingests,
        corpus_seed()
    );
    println!(
        "warm hit rate {:.1}% ({} hits / {} misses, {} negative shard hits, \
         {} shard partials reused across ingests)",
        report.warm_hit_rate * 100.0,
        report.result_hits,
        report.result_misses,
        report.negative_hits,
        report.partial_reuses,
    );
    println!(
        "median latency: miss {:.4} ms, hit {:.4} ms ({:.0}x)",
        report.cold_median_ms, report.warm_median_ms, report.warm_speedup
    );
    print_quantiles("miss latency", &report.cold);
    print_quantiles("hit latency", &report.warm);
    for row in &report.skew_rows {
        println!(
            "  zipf s={:.1}: {:.1}% hit rate over {} events",
            row.skew,
            row.hit_rate * 100.0,
            row.events
        );
    }
    let c = &report.cache;
    println!(
        "cache: {} insertions, {} evictions, {} KiB resident (peak {} KiB)",
        c.insertions,
        c.evictions,
        c.current_bytes >> 10,
        c.peak_bytes >> 10,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"seed\": {},\n  \"shards\": {},\n  \
         \"events\": {},\n  \"ingests\": {},\n  \"pool_queries\": {},\n  \
         \"zipf_s\": 1.0,\n  \"match_sets_identical\": true,\n  \
         \"result_hits\": {},\n  \"result_misses\": {},\n  \
         \"negative_hits\": {},\n  \"partial_reuses\": {},\n  \
         \"warm_hit_rate\": {:.4},\n  \"cold_median_ms\": {:.4},\n  \
         \"warm_median_ms\": {:.4},\n  \"warm_speedup\": {:.2},\n  \
         \"latency_quantiles\": {{\"miss\": {}, \"hit\": {}}},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"negative_hits\": {}, \
         \"insertions\": {}, \"evictions\": {}, \"current_bytes\": {}, \
         \"peak_bytes\": {}}},\n  \"skew_sweep\": [\n",
        corpus_seed(),
        report.shards,
        report.events,
        report.ingests,
        report.pool,
        report.result_hits,
        report.result_misses,
        report.negative_hits,
        report.partial_reuses,
        report.warm_hit_rate,
        report.cold_median_ms,
        report.warm_median_ms,
        report.warm_speedup,
        quantiles_json(&report.cold),
        quantiles_json(&report.warm),
        report.cache.hits,
        report.cache.misses,
        report.cache.negative_hits,
        report.cache.insertions,
        report.cache.evictions,
        report.cache.current_bytes,
        report.cache.peak_bytes,
    ));
    for (i, row) in report.skew_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"s\": {:.1}, \"events\": {}, \"hit_rate\": {:.4}}}{}\n",
            row.skew,
            row.events,
            row.hit_rate,
            if i + 1 == report.skew_rows.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_cache.json", json)?;
    println!(
        "wrote BENCH_cache.json ({} skew points)",
        report.skew_rows.len()
    );
    Ok(())
}

// --------------------------------------------------------------------
// Overlapped posting I/O: BENCH_prefetch.json
// --------------------------------------------------------------------

/// One scan-heavy query's figures in the cold buffered A/B.
#[derive(Debug, Clone)]
pub struct PrefetchBenchRow {
    /// Query text id (`scan-<rank>` by posting count).
    pub name: String,
    /// Match count (asserted identical across every arm, every rep).
    pub matches: usize,
    /// Postings on the cover key (workload context).
    pub postings: u64,
    /// Min seconds on a fresh buffered pager with prefetch on.
    pub cold_on_seconds: f64,
    /// Min seconds on a fresh buffered pager with prefetch off.
    pub cold_off_seconds: f64,
    /// Prefetch hints issued on one cold prefetch-on rep.
    pub hints: u64,
    /// Prefetched pages this query consumed on that rep.
    pub useful: u64,
}

/// Aggregate figures of [`run_prefetch_bench`].
#[derive(Debug)]
pub struct PrefetchBenchReport {
    /// Per-query rows (interval coding, cold buffered arm).
    pub rows: Vec<PrefetchBenchRow>,
    /// Timed repetitions per query per state.
    pub reps: usize,
    /// Median over rows of `cold_off / cold_on` (the CI gate: >= 1.2).
    pub cold_median_speedup: f64,
    /// Min seconds for a full warm pass (pager LRU + block cache hot,
    /// prefetch on: every hint suppressed by the cache-residency check).
    pub warm_on_seconds: f64,
    /// Min seconds for the same warm pass with prefetch disabled (the
    /// one-atomic-branch path every site pays when the feature is off).
    pub warm_off_seconds: f64,
    /// `warm_on / warm_off - 1` (the CI gate: <= 0.02 either way).
    pub warm_overhead: f64,
    /// Min seconds for a full pass on fresh mmap opens, prefetch on
    /// (touch reads). Zero when the platform cannot map.
    pub mmap_on_seconds: f64,
    /// Min seconds for the same mmap pass with prefetch off.
    pub mmap_off_seconds: f64,
}

/// Drops the OS page cache for `path` (best effort, unix only). The
/// cold-cache arm must not be served from the kernel's cache: a cached
/// "cold" read collapses into a memcpy and leaves no I/O latency for
/// the prefetcher to overlap, so every cold measurement evicts the
/// index file first and both states pay real block-layer reads.
#[cfg(unix)]
fn drop_page_cache(path: &std::path::Path) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
    }
    const POSIX_FADV_DONTNEED: i32 = 4;
    let Ok(f) = std::fs::File::open(path) else {
        return;
    };
    // Only clean pages are droppable; the file was written moments ago.
    let _ = f.sync_all();
    // SAFETY: plain advice on an owned, open fd; no memory is touched.
    unsafe {
        posix_fadvise(f.as_raw_fd(), 0, 0, POSIX_FADV_DONTNEED);
    }
}

#[cfg(not(unix))]
fn drop_page_cache(_path: &std::path::Path) {}

/// The prefetch workload: `S(//X)` where `X` ranks among the most
/// frequent small index keys, so the cover is a single long posting
/// list drained end to end — overflow-chain I/O dominates and the
/// prefetcher's batched, overlapped reads have something to hide.
fn prefetch_probe_queries(
    index: &SubtreeIndex,
    interner: &mut si_parsetree::LabelInterner,
    n: usize,
) -> Vec<(String, Query, u64)> {
    let mut heavy: Vec<(u64, Vec<u8>)> = Vec::new();
    for entry in index.iter_keys().expect("iter keys") {
        let (key, _) = entry.expect("key entry");
        let size = si_core::canonical::key_size(&key).unwrap_or(0);
        if !(1..=2).contains(&size) {
            continue;
        }
        let stats = index
            .key_stats(&key)
            .expect("key stats")
            .expect("indexed key has stats");
        heavy.push((stats.postings, key));
    }
    heavy.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut queries = Vec::new();
    for (postings, key) in &heavy {
        if queries.len() >= n {
            break;
        }
        let Some(rendered) = render_canon(key, interner) else {
            continue;
        };
        let text = format!("S(//{rendered})");
        let Ok(q) = si_query::parse_query(&text, interner) else {
            continue;
        };
        queries.push((format!("scan-{}", queries.len()), q, *postings));
    }
    queries
}

/// Runs the overlapped-I/O A/B on three read paths, interleaving
/// prefetch-on and prefetch-off repetitions (state order flips every
/// rep so drift hits both sides equally):
///
/// - **cold buffered** — every measurement reopens the index through
///   the buffered pager, so the page LRU starts empty and each posting
///   page costs a positioned read; prefetch collapses those into
///   batched worker-side reads ahead of the consumer. Per-query rows;
///   the headline `>= 1.2x` median-speedup gate lives here.
/// - **fully warm** — one buffered index plus a shared block cache,
///   warmed until no rep touches the disk. Prefetch-on reps exercise
///   the hints-suppressed path (cache residency checked before every
///   hint), prefetch-off reps the disabled path; the `<= 2%` overhead
///   gate bounds on-vs-off.
/// - **mmap** — fresh read-only mapped opens; prefetch degrades to
///   madvise-style touch reads. Reported, not gated (the OS page cache
///   cannot be dropped portably, so cold mapped numbers are advisory).
///
/// Match sets are asserted identical against a prefetch-off baseline on
/// every repetition of every arm, and the cold arm asserts hints were
/// issued (on), consumed (on, across the suite), and absent (off) —
/// the CI smoke job relies on these panics.
pub fn run_prefetch_bench(scale: Scale) -> PrefetchBenchReport {
    let work = Workdir::new("prefetch");
    let n = scale.query_corpus();
    let big = corpus(n);
    let reps = scale.reps().max(5);
    let dir = work.path("prefetch-idx");
    let built = SubtreeIndex::build(
        &dir,
        big.trees(),
        big.interner(),
        IndexOptions::new(3, Coding::SubtreeInterval),
    )
    .expect("prefetch bench build");
    assert!(built.has_skip_headers(), "fresh builds write skip headers");
    let mut interner = built.interner();
    let queries = prefetch_probe_queries(&built, &mut interner, 12);
    assert!(
        queries.len() >= 4,
        "prefetch bench needs scan-heavy probes, found {}",
        queries.len()
    );
    drop(built); // every timed arm reopens through its own pager

    let was_enabled = si_storage::prefetch_enabled();
    let ctx = si_core::ExecContext::default();

    // Baseline match sets: buffered, prefetch off.
    si_storage::set_prefetch_enabled(false);
    let baseline: Vec<_> = {
        let index = SubtreeIndex::open_buffered(&dir).expect("open buffered");
        assert!(!index.is_mapped(), "open_buffered must not map");
        queries
            .iter()
            .map(|(_, q, _)| index.evaluate_with(q, &ctx).expect("evaluate").matches)
            .collect()
    };

    // Cold buffered arm: fresh pager LRU per measurement.
    let mut cold_on = vec![f64::INFINITY; queries.len()];
    let mut cold_off = vec![f64::INFINITY; queries.len()];
    let mut hints = vec![0u64; queries.len()];
    let mut useful = vec![0u64; queries.len()];
    for rep in 0..reps {
        let states = if rep % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        for (qi, (name, q, _)) in queries.iter().enumerate() {
            for on in states {
                si_storage::set_prefetch_enabled(on);
                drop_page_cache(&dir.join("index.bt"));
                let index = SubtreeIndex::open_buffered(&dir).expect("open buffered");
                let (result, secs) = time(|| index.evaluate_with(q, &ctx).expect("evaluate"));
                assert_eq!(
                    result.matches, baseline[qi],
                    "prefetch changed the match set on {name} (cold, on={on})"
                );
                if on {
                    assert!(
                        result.stats.prefetch_hints > 0,
                        "no prefetch hints on cold {name}"
                    );
                    hints[qi] = hints[qi].max(result.stats.prefetch_hints);
                    useful[qi] = useful[qi].max(result.stats.prefetch_useful);
                    cold_on[qi] = cold_on[qi].min(secs);
                } else {
                    assert_eq!(
                        result.stats.prefetch_hints, 0,
                        "hints issued while disabled on {name}"
                    );
                    cold_off[qi] = cold_off[qi].min(secs);
                }
            }
        }
    }
    assert!(
        useful.iter().sum::<u64>() > 0,
        "cold prefetch-on runs consumed zero prefetched pages"
    );

    // Fully warm arm: one buffered pager + a shared block cache.
    let mut warm_on = f64::INFINITY;
    let mut warm_off = f64::INFINITY;
    {
        let index = SubtreeIndex::open_buffered(&dir).expect("open buffered");
        let cache = std::sync::Arc::new(si_core::BlockCache::new(
            si_core::BlockCacheConfig::default(),
        ));
        let warm_ctx = si_core::ExecContext {
            cache: Some(cache),
            ..Default::default()
        };
        si_storage::set_prefetch_enabled(false);
        for _ in 0..2 {
            for (qi, (name, q, _)) in queries.iter().enumerate() {
                let r = index.evaluate_with(q, &warm_ctx).expect("evaluate");
                assert_eq!(r.matches, baseline[qi], "warm-up diverged on {name}");
            }
        }
        // Warm + on: hints may still be issued (a hint is just an async
        // request), but a fully-resident pager must never actually load
        // a page ahead of anyone — "warm lists cost nothing" means zero
        // prefetched pages consumed.
        si_storage::set_prefetch_enabled(true);
        let (_, q, _) = &queries[0];
        let r = index.evaluate_with(q, &warm_ctx).expect("evaluate");
        assert_eq!(
            r.stats.prefetch_useful, 0,
            "warm query consumed prefetched pages"
        );
        // Twice the cold reps: the 2% gate compares two ~equal minima,
        // so the noise floor has to be tighter than the gate.
        for rep in 0..reps * 2 {
            let states = if rep % 2 == 0 {
                [true, false]
            } else {
                [false, true]
            };
            for on in states {
                si_storage::set_prefetch_enabled(on);
                let (got, secs) = time(|| {
                    queries
                        .iter()
                        .map(|(_, q, _)| {
                            index.evaluate_with(q, &warm_ctx).expect("evaluate").matches
                        })
                        .collect::<Vec<_>>()
                });
                for (qi, m) in got.iter().enumerate() {
                    assert_eq!(m, &baseline[qi], "warm pass diverged (on={on})");
                }
                if on {
                    warm_on = warm_on.min(secs);
                } else {
                    warm_off = warm_off.min(secs);
                }
            }
        }
    }

    // Mmap arm: fresh read-only mapped opens, touch-read hints.
    let mut mmap_on = f64::INFINITY;
    let mut mmap_off = f64::INFINITY;
    let mapped = SubtreeIndex::open(&dir)
        .map(|i| i.is_mapped())
        .unwrap_or(false);
    if mapped {
        for rep in 0..reps {
            let states = if rep % 2 == 0 {
                [true, false]
            } else {
                [false, true]
            };
            for on in states {
                si_storage::set_prefetch_enabled(on);
                drop_page_cache(&dir.join("index.bt"));
                let index = SubtreeIndex::open(&dir).expect("open mapped");
                let (got, secs) = time(|| {
                    queries
                        .iter()
                        .map(|(_, q, _)| index.evaluate_with(q, &ctx).expect("evaluate").matches)
                        .collect::<Vec<_>>()
                });
                for (qi, m) in got.iter().enumerate() {
                    assert_eq!(m, &baseline[qi], "mmap pass diverged (on={on})");
                }
                if on {
                    mmap_on = mmap_on.min(secs);
                } else {
                    mmap_off = mmap_off.min(secs);
                }
            }
        }
    } else {
        mmap_on = 0.0;
        mmap_off = 0.0;
        eprintln!("prefetch bench: mmap unavailable, skipping the mapped arm");
    }
    si_storage::set_prefetch_enabled(was_enabled);

    let rows: Vec<PrefetchBenchRow> = queries
        .iter()
        .enumerate()
        .map(|(qi, (name, _, postings))| PrefetchBenchRow {
            name: name.clone(),
            matches: baseline[qi].len(),
            postings: *postings,
            cold_on_seconds: cold_on[qi],
            cold_off_seconds: cold_off[qi],
            hints: hints[qi],
            useful: useful[qi],
        })
        .collect();
    let mut speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.cold_off_seconds / r.cold_on_seconds.max(1e-9))
        .collect();
    let cold_median_speedup = median(&mut speedups);
    let warm_overhead = warm_on / warm_off.max(1e-9) - 1.0;
    assert!(
        cold_median_speedup >= 1.2,
        "cold buffered median speedup {cold_median_speedup:.3}x under the 1.2x gate"
    );
    assert!(
        warm_overhead <= 0.02,
        "warm/disabled prefetch overhead {:.2}% over the 2% gate",
        warm_overhead * 100.0
    );
    PrefetchBenchReport {
        rows,
        reps,
        cold_median_speedup,
        warm_on_seconds: warm_on,
        warm_off_seconds: warm_off,
        warm_overhead,
        mmap_on_seconds: mmap_on,
        mmap_off_seconds: mmap_off,
    }
}

/// Prints the overlapped-I/O A/B summary and writes
/// `BENCH_prefetch.json` into the current directory.
pub fn emit_prefetch_bench(scale: Scale, report: &PrefetchBenchReport) -> std::io::Result<()> {
    println!("# Overlapped posting I/O: prefetch on vs off");
    println!(
        "{} probes x {} reps per state, seed {:#x}",
        report.rows.len(),
        report.reps,
        corpus_seed()
    );
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>12} {:>9} {:>7} {:>7}",
        "query", "postings", "matches", "cold off ms", "cold on ms", "speedup", "hints", "useful"
    );
    for r in &report.rows {
        println!(
            "{:<10} {:>9} {:>10} {:>12.3} {:>12.3} {:>8.2}x {:>7} {:>7}",
            r.name,
            r.postings,
            r.matches,
            r.cold_off_seconds * 1e3,
            r.cold_on_seconds * 1e3,
            r.cold_off_seconds / r.cold_on_seconds.max(1e-9),
            r.hints,
            r.useful
        );
    }
    println!(
        "cold buffered: {:.2}x median speedup (gate >= 1.2x)",
        report.cold_median_speedup
    );
    println!(
        "fully warm:    {:.3} ms on vs {:.3} ms off per pass, {:+.2}% overhead (gate <= 2%)",
        report.warm_on_seconds * 1e3,
        report.warm_off_seconds * 1e3,
        report.warm_overhead * 100.0
    );
    if report.mmap_off_seconds > 0.0 {
        println!(
            "mmap:          {:.3} ms on vs {:.3} ms off per pass ({:.2}x, advisory)",
            report.mmap_on_seconds * 1e3,
            report.mmap_off_seconds * 1e3,
            report.mmap_off_seconds / report.mmap_on_seconds.max(1e-9)
        );
    }
    let on_q = latency_quantiles(report.rows.iter().map(|r| r.cold_on_seconds));
    let off_q = latency_quantiles(report.rows.iter().map(|r| r.cold_off_seconds));
    print_quantiles("cold prefetch-on latency", &on_q);
    print_quantiles("cold prefetch-off latency", &off_q);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"scale\": \"{scale:?}\",\n  \"mss\": 3,\n  \"seed\": {},\n  \"reps\": {},\n  \
         \"match_sets_identical\": true,\n  \"cold_median_speedup\": {:.3},\n  \
         \"cold_speedup_gate\": 1.2,\n  \"warm_on_ms\": {:.4},\n  \"warm_off_ms\": {:.4},\n  \
         \"warm_overhead\": {:.5},\n  \"warm_overhead_gate\": 0.02,\n  \
         \"mmap_on_ms\": {:.4},\n  \"mmap_off_ms\": {:.4},\n  \
         \"latency_quantiles\": {{\"cold_on\": {}, \"cold_off\": {}}},\n  \"queries\": [\n",
        corpus_seed(),
        report.reps,
        report.cold_median_speedup,
        report.warm_on_seconds * 1e3,
        report.warm_off_seconds * 1e3,
        report.warm_overhead,
        report.mmap_on_seconds * 1e3,
        report.mmap_off_seconds * 1e3,
        quantiles_json(&on_q),
        quantiles_json(&off_q),
    ));
    for (i, r) in report.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"postings\": {}, \"matches\": {}, \
             \"cold_off_ms\": {:.4}, \"cold_on_ms\": {:.4}, \"speedup\": {:.3}, \
             \"hints\": {}, \"useful\": {}}}{}\n",
            json_escape(&r.name),
            r.postings,
            r.matches,
            r.cold_off_seconds * 1e3,
            r.cold_on_seconds * 1e3,
            r.cold_off_seconds / r.cold_on_seconds.max(1e-9),
            r.hints,
            r.useful,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_prefetch.json", json)?;
    println!(
        "wrote BENCH_prefetch.json ({} query measurements)",
        report.rows.len()
    );
    Ok(())
}

/// Convenience: a tiny corpus + root-split index for Criterion benches.
pub fn bench_fixture(
    sentences: usize,
    mss: usize,
    coding: Coding,
) -> (Workdir, Corpus, SubtreeIndex) {
    let work = Workdir::new(&format!("crit-{sentences}-{mss}-{coding:?}"));
    let big = corpus(sentences);
    let index = SubtreeIndex::build(
        &work.path("idx"),
        big.trees(),
        big.interner(),
        IndexOptions::new(mss, coding),
    )
    .expect("bench fixture build");
    (work, big, index)
}

/// Trees of the fixture corpus (helper for baseline benches).
pub fn fixture_trees(c: &Corpus) -> &[ParseTree] {
    c.trees()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_reads_env() {
        // Default is Small (the test runner does not set SI_SCALE).
        assert_eq!(Scale::from_env(), Scale::Small);
        assert_eq!(Scale::Small.grid_sizes().last(), Some(&10_000));
        assert_eq!(Scale::Paper.fig13_sizes().last(), Some(&1_000_000));
        assert!(Scale::Paper.reps() >= Scale::Small.reps());
    }

    #[test]
    fn workdir_cleans_up_on_drop() {
        let path;
        {
            let w = Workdir::new("selftest");
            path = w.0.clone();
            std::fs::write(w.path("x"), b"y").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn workload_has_paper_cardinalities() {
        let c = corpus(50);
        let (wh, fb) = workload(&c, 30);
        assert_eq!(wh.len(), 48);
        assert_eq!(fb.len(), 70);
    }

    #[test]
    fn tab3_runs_without_corpus() {
        // Pure decomposition: must not panic and must print all groups.
        tab3();
    }

    #[test]
    fn time_measures_something() {
        let (v, secs) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
