//! Shared experiment harness: dataset construction, query workloads,
//! timing helpers and the per-figure/table drivers used both by the
//! `experiments` binary and the Criterion benches.

pub mod harness;

pub use harness::*;
