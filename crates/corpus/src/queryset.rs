//! The two query workloads of §6.1.
//!
//! * **WH query-set** — 48 structure-only queries, 12 each for *who*,
//!   *what*, *which* and *where* questions. The paper had a third person
//!   rewrite AOL-log questions as declarative sentences, parse them and
//!   strip the lexical leaves; our templates are the parse skeletons such
//!   rewrites produce under the generator's grammar (DESIGN.md §4).
//! * **FB query-set** — 70 queries in 7 selectivity classes (H, M, L and
//!   their combinations), one query of each size 1–10 per class,
//!   extracted as subtrees of *held-out* parse trees whose node labels
//!   realize the class's frequency bands.

use crate::rng::StdRng;

use si_parsetree::{LabelInterner, NodeId, ParseTree};
use si_query::{parse_query, Query};

use crate::generator::Corpus;

/// The four WH query groups of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WhGroup {
    /// *who* questions.
    Who,
    /// *what* questions.
    What,
    /// *which* questions.
    Which,
    /// *where* questions.
    Where,
}

impl WhGroup {
    /// All groups in the paper's reporting order.
    pub const ALL: [WhGroup; 4] = [WhGroup::Who, WhGroup::Which, WhGroup::Where, WhGroup::What];
}

impl std::fmt::Display for WhGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WhGroup::Who => "Who",
            WhGroup::What => "What",
            WhGroup::Which => "Which",
            WhGroup::Where => "Where",
        };
        f.write_str(s)
    }
}

/// One WH query with its group tag.
#[derive(Debug, Clone)]
pub struct WhQuery {
    /// Which question group the query came from.
    pub group: WhGroup,
    /// The structure-only query tree.
    pub query: Query,
    /// Source text in [`si_query::parse_query`] syntax.
    pub text: String,
}

/// Declarative-rewrite parse skeletons, stripped of lexical leaves.
/// Sizes run 9–15 nodes, matching the join counts of Table 3.
const WH_TEMPLATES: &[(WhGroup, &str)] = &[
    // --- who: subjects and predicates naming people ---
    (
        WhGroup::Who,
        "S(NP(NNP))(VP(VBZ)(NP(DT)(NN))(PP(IN)(NP(NNP))))",
    ),
    (WhGroup::Who, "S(NP(NNP)(NNP))(VP(VBD)(NP(DT)(NN)))"),
    (
        WhGroup::Who,
        "S(NP(NP(DT)(NN))(PP(IN)(NP(NNP))))(VP(VBZ)(NP(NNP)))",
    ),
    (
        WhGroup::Who,
        "S(NP(DT)(NN))(VP(VBZ)(NP(NP(NNP))(PP(IN)(NP))))",
    ),
    (
        WhGroup::Who,
        "S(NP(NNP))(VP(VBD)(NP(DT)(JJ)(NN))(PP(IN)(NP)))",
    ),
    (WhGroup::Who, "S(NP(PRP))(VP(VBZ)(NP(DT)(NN)(NN)))"),
    (WhGroup::Who, "S(NP(NNP))(VP(MD)(VP(VB)(NP(DT)(NN))))"),
    (
        WhGroup::Who,
        "S(NP(NP(DT)(NN))(SBAR(WHNP(WP))(S(VP(VBZ)(NP)))))",
    ),
    (
        WhGroup::Who,
        "S(NP(NNP))(VP(VBZ)(SBAR(IN)(S(NP(PRP))(VP(VBD)))))",
    ),
    (WhGroup::Who, "S(NP(DT)(NN))(VP(VBZ)(NP(NNP)(NNP)))"),
    (WhGroup::Who, "S(NP(NNP))(VP(VBZ)(ADJP(JJ)(PP(IN)(NP))))"),
    (
        WhGroup::Who,
        "S(NP(NNP))(VP(VBZ)(NP(NP(NN))(PP(IN)(NP(NNP)))))",
    ),
    // --- which: restricted nominals, relative clauses ---
    (
        WhGroup::Which,
        "S(NP(NP(DT)(NN))(SBAR(WHNP(WDT))(S(VP(VBZ)(NP)))))",
    ),
    (
        WhGroup::Which,
        "S(NP(DT)(JJ)(NN))(VP(VBZ)(NP(DT)(NN))(PP(IN)(NP)))",
    ),
    (WhGroup::Which, "S(NP(DT)(NN)(NN))(VP(VBD)(NP(DT)(JJ)(NN)))"),
    (
        WhGroup::Which,
        "S(NP(NP(DT)(NNS))(PP(IN)(NP(NNP))))(VP(VBP)(NP))",
    ),
    (
        WhGroup::Which,
        "S(NP(DT)(NN))(VP(VBZ)(NP(NP(DT)(JJ)(NN))(PP(IN)(NP))))",
    ),
    (
        WhGroup::Which,
        "S(NP(JJ)(NNS))(VP(VBP)(NP(DT)(NN))(PP(IN)(NP)))",
    ),
    (
        WhGroup::Which,
        "S(NP(DT)(NN))(VP(MD)(VP(VB)(NP(DT)(NN)(NN))))",
    ),
    (
        WhGroup::Which,
        "S(NP(NP(CD)(NNS))(PP(IN)(NP)))(VP(VBP)(ADJP(JJ)))",
    ),
    (
        WhGroup::Which,
        "S(NP(DT)(NNS))(VP(VBD)(SBAR(IN)(S(NP)(VP(VBZ)))))",
    ),
    (
        WhGroup::Which,
        "S(NP(NP(DT)(NN))(SBAR(WHNP(WDT)(NN))(S(VP(VBZ)))))",
    ),
    (WhGroup::Which, "S(NP(DT)(JJ)(JJ)(NN))(VP(VBZ)(NP(NN)))"),
    (
        WhGroup::Which,
        "S(NP(DT)(NN))(VP(VBZ)(NP(JJ)(NNS))(PP(IN)(NP)))",
    ),
    // --- where: locative prepositional structure ---
    (WhGroup::Where, "S(NP(NNP))(VP(VBZ)(PP(IN)(NP(NNP)(NNP))))"),
    (WhGroup::Where, "S(NP(DT)(NN))(VP(VBZ)(PP(IN)(NP(DT)(NN))))"),
    (
        WhGroup::Where,
        "S(NP(NNP))(VP(VBD)(NP(DT)(NN))(PP(IN)(NP(NNP))))",
    ),
    (WhGroup::Where, "S(PP(IN)(NP(NNP)))(,)(NP(DT)(NN))(VP(VBZ))"),
    (
        WhGroup::Where,
        "S(NP(NP(DT)(NN))(PP(IN)(NP(NNP))))(VP(VBZ)(NP))",
    ),
    (
        WhGroup::Where,
        "S(NP(DT)(NNS))(VP(VBP)(PP(IN)(NP(DT)(JJ)(NN))))",
    ),
    (WhGroup::Where, "S(NP(NNP))(VP(VBZ)(VP(VBN)(PP(IN)(NP))))"),
    (
        WhGroup::Where,
        "S(NP(DT)(NN)(NN))(VP(VBZ)(PP(IN)(NP(NNP))))",
    ),
    (
        WhGroup::Where,
        "S(NP(PRP))(VP(VBD)(PP(IN)(NP(NP(NN))(PP(IN)(NP)))))",
    ),
    (
        WhGroup::Where,
        "S(NP(NNP)(NNP))(VP(VBZ)(PP(TO)(NP(DT)(NN))))",
    ),
    (
        WhGroup::Where,
        "S(NP(DT)(NN))(VP(VBD)(PP(IN)(NP(JJ)(NNS))))",
    ),
    (
        WhGroup::Where,
        "S(NP(NNS))(VP(VBP)(PP(IN)(NP(DT)(NN))(PP(IN)(NP))))",
    ),
    // --- what: definitional and event structure ---
    (WhGroup::What, "S(NP(NN))(VP(VBZ)(NP(DT)(JJ)(NN)))"),
    (
        WhGroup::What,
        "S(NP(DT)(NN))(VP(VBZ)(NP(NP(NN))(PP(IN)(NP(NNS)))))",
    ),
    (WhGroup::What, "S(NP(NNS))(VP(VBP)(NP(DT)(NN))(PP(IN)(NP)))"),
    (
        WhGroup::What,
        "S(NP(DT)(NN))(VP(VBZ)(SBAR(IN)(S(NP(PRP))(VP(VBZ)))))",
    ),
    (WhGroup::What, "S(NP(DT)(NN)(NN))(VP(VBZ)(NP(DT)(NN)))"),
    (WhGroup::What, "S(NP(DT)(NN))(VP(VBZ)(ADJP(RB)(JJ)))"),
    (
        WhGroup::What,
        "S(NP(DT)(JJ)(NN))(VP(VBD)(NP(NNS))(PP(IN)(NP)))",
    ),
    (
        WhGroup::What,
        "S(NP(NP(NN))(PP(IN)(NP(DT)(NN))))(VP(VBZ)(NP))",
    ),
    (WhGroup::What, "S(NP(DT)(NN))(VP(MD)(VP(VB)(NP(JJ)(NNS))))"),
    (WhGroup::What, "S(NP(NN)(NNS))(VP(VBP)(NP(DT)(NN)))"),
    (
        WhGroup::What,
        "S(NP(DT)(NN))(VP(VBZ)(NP(CD)(NNS))(PP(IN)(NP)))",
    ),
    (
        WhGroup::What,
        "S(NP(NNS))(VP(VBD)(SBAR(WHADVP(WRB))(S(NP)(VP))))",
    ),
];

/// Builds the 48-query WH set, interning labels into `interner`.
///
/// # Panics
/// Panics if a template fails to parse (a bug, covered by tests).
pub fn wh_query_set(interner: &mut LabelInterner) -> Vec<WhQuery> {
    WH_TEMPLATES
        .iter()
        .map(|(group, text)| WhQuery {
            group: *group,
            query: parse_query(text, interner)
                .unwrap_or_else(|e| panic!("bad WH template {text}: {e}")),
            text: (*text).to_owned(),
        })
        .collect()
}

/// The seven FB selectivity classes of §6.1 / Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FbClass {
    L,
    M,
    Ml,
    H,
    Hl,
    Hm,
    Hml,
}

impl FbClass {
    /// All classes in the paper's Table 2 row order.
    pub const ALL: [FbClass; 7] = [
        FbClass::L,
        FbClass::M,
        FbClass::Ml,
        FbClass::H,
        FbClass::Hl,
        FbClass::Hm,
        FbClass::Hml,
    ];

    /// The frequency bands a query of this class must contain.
    fn required(&self) -> &'static [Band] {
        match self {
            FbClass::L => &[Band::Low],
            FbClass::M => &[Band::Mid],
            FbClass::Ml => &[Band::Mid, Band::Low],
            FbClass::H => &[Band::High],
            FbClass::Hl => &[Band::High, Band::Low],
            FbClass::Hm => &[Band::High, Band::Mid],
            FbClass::Hml => &[Band::High, Band::Mid, Band::Low],
        }
    }
}

impl std::fmt::Display for FbClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FbClass::L => "L",
            FbClass::M => "M",
            FbClass::Ml => "ML",
            FbClass::H => "H",
            FbClass::Hl => "HL",
            FbClass::Hm => "HM",
            FbClass::Hml => "HML",
        };
        f.write_str(s)
    }
}

/// One FB query with its class and target size.
#[derive(Debug, Clone)]
pub struct FbQuery {
    /// Selectivity class.
    pub class: FbClass,
    /// Node count of the query (1–10).
    pub size: usize,
    /// The extracted all-`/` query.
    pub query: Query,
}

/// Frequency band of a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Band {
    High,
    Mid,
    Low,
}

/// Classifies every label of `corpus` into frequency bands.
///
/// High: the most frequent labels (top 15 by occurrence count — the
/// heavy grammar tags); Low: present but rare (≤ 10 occurrences);
/// Mid: a band around the median of the remaining labels. Labels outside
/// all bands are unclassified (`None`) and never *required*, but may
/// appear as connectors inside extracted subtrees.
fn classify(freq: &[u64]) -> Vec<Option<Band>> {
    let mut by_freq: Vec<(u64, usize)> = freq
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| (f, i))
        .collect();
    by_freq.sort_unstable_by(|a, b| b.cmp(a));
    let mut bands = vec![None; freq.len()];
    for (rank, &(f, i)) in by_freq.iter().enumerate() {
        let band = if rank < 15 {
            Some(Band::High)
        } else if f <= 10 {
            Some(Band::Low)
        } else if rank < by_freq.len() / 4 {
            // Upper-middle of the distribution: medium selectivity.
            Some(Band::Mid)
        } else {
            None
        };
        bands[i] = band;
    }
    bands
}

/// Constructs the 70-query FB set: for each class, one subtree query of
/// each size 1–10, extracted from `heldout` trees (which must not be part
/// of the indexed corpus). Frequency bands are computed on `corpus`.
///
/// Deterministic given `seed`. Queries that cannot be realized exactly
/// (e.g. a pure-L subtree of size 10 when low-frequency labels only occur
/// at leaves) are built best-effort: the required bands are guaranteed
/// present, remaining nodes are unconstrained connectors.
pub fn fb_query_set(corpus: &Corpus, heldout: &[ParseTree], seed: u64) -> Vec<FbQuery> {
    let freq = corpus.label_frequencies();
    let bands = classify(&freq);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(70);
    for class in FbClass::ALL {
        for size in 1..=10 {
            let query =
                extract_class_query(heldout, &bands, class, size, &mut rng).unwrap_or_else(|| {
                    // Fall back to any subtree of the right size.
                    extract_any_subtree(heldout, size, &mut rng)
                });
            out.push(FbQuery { class, size, query });
        }
    }
    out
}

/// Tries to extract a connected rooted subtree of `size` nodes from a
/// held-out tree such that every band required by `class` occurs among
/// its labels; favours nodes whose band belongs to the class.
fn extract_class_query(
    heldout: &[ParseTree],
    bands: &[Option<Band>],
    class: FbClass,
    size: usize,
    rng: &mut StdRng,
) -> Option<Query> {
    let required = class.required();
    let band_of = |t: &ParseTree, n: NodeId| -> Option<Band> {
        bands.get(t.label(n).id() as usize).copied().flatten()
    };
    for _attempt in 0..4000 {
        let t = &heldout[rng.gen_range(0..heldout.len())];
        if t.len() < size {
            continue;
        }
        let root = NodeId(rng.gen_range(0..t.len() as u32));
        if t.subtree_size(root) < size as u32 {
            continue;
        }
        // Grow a connected subtree from `root`, preferring children whose
        // band is one of the required ones.
        let mut keep: Vec<NodeId> = vec![root];
        let mut frontier: Vec<NodeId> = t.children(root).collect();
        while keep.len() < size && !frontier.is_empty() {
            // Prefer frontier nodes with a required band 3:1.
            let preferred: Vec<usize> = frontier
                .iter()
                .enumerate()
                .filter(|(_, &n)| band_of(t, n).is_some_and(|b| required.contains(&b)))
                .map(|(i, _)| i)
                .collect();
            let idx = if !preferred.is_empty() && rng.gen_bool(0.75) {
                preferred[rng.gen_range(0..preferred.len())]
            } else {
                rng.gen_range(0..frontier.len())
            };
            let n = frontier.swap_remove(idx);
            keep.push(n);
            frontier.extend(t.children(n));
        }
        if keep.len() != size {
            continue;
        }
        let covered = required
            .iter()
            .all(|b| keep.iter().any(|&n| band_of(t, n) == Some(*b)));
        if !covered {
            continue;
        }
        return Some(Query::from_tree_subtree(t, root, &keep));
    }
    None
}

/// Any connected rooted subtree of `size` nodes (class constraint waived).
fn extract_any_subtree(heldout: &[ParseTree], size: usize, rng: &mut StdRng) -> Query {
    loop {
        let t = &heldout[rng.gen_range(0..heldout.len())];
        if t.len() < size {
            continue;
        }
        let root = NodeId(rng.gen_range(0..t.len() as u32));
        if t.subtree_size(root) < size as u32 {
            continue;
        }
        let mut keep: Vec<NodeId> = vec![root];
        let mut frontier: Vec<NodeId> = t.children(root).collect();
        while keep.len() < size && !frontier.is_empty() {
            let idx = rng.gen_range(0..frontier.len());
            let n = frontier.swap_remove(idx);
            keep.push(n);
            frontier.extend(t.children(n));
        }
        if keep.len() == size {
            return Query::from_tree_subtree(t, root, &keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    #[test]
    fn wh_set_has_48_queries_in_4_groups() {
        let mut li = LabelInterner::new();
        let set = wh_query_set(&mut li);
        assert_eq!(set.len(), 48);
        for group in WhGroup::ALL {
            assert_eq!(
                set.iter().filter(|q| q.group == group).count(),
                12,
                "group {group}"
            );
        }
        for q in &set {
            assert!(
                (9..=16).contains(&q.query.len()),
                "query {} has size {}",
                q.text,
                q.query.len()
            );
            assert!(q.query.is_child_only());
        }
    }

    #[test]
    fn fb_set_has_70_queries_of_sizes_1_to_10() {
        let corpus = GeneratorConfig::default().with_seed(1).generate(500);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(2)
            .generate_into(100, &mut interner);
        let set = fb_query_set(&corpus, &heldout, 99);
        assert_eq!(set.len(), 70);
        for class in FbClass::ALL {
            let sizes: Vec<usize> = set
                .iter()
                .filter(|q| q.class == class)
                .map(|q| q.size)
                .collect();
            assert_eq!(sizes, (1..=10).collect::<Vec<_>>(), "class {class}");
        }
        for q in &set {
            assert_eq!(q.query.len(), q.size, "extracted size matches");
            assert!(q.query.is_child_only());
        }
    }

    #[test]
    fn fb_set_is_deterministic() {
        let corpus = GeneratorConfig::default().with_seed(1).generate(200);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(2)
            .generate_into(50, &mut interner);
        let a = fb_query_set(&corpus, &heldout, 7);
        let b = fb_query_set(&corpus, &heldout, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn classify_produces_all_bands() {
        let corpus = GeneratorConfig::default().with_seed(4).generate(500);
        let freq = corpus.label_frequencies();
        let bands = classify(&freq);
        let count = |b: Band| bands.iter().filter(|&&x| x == Some(b)).count();
        assert_eq!(count(Band::High), 15);
        assert!(count(Band::Mid) > 20, "mid labels: {}", count(Band::Mid));
        assert!(count(Band::Low) > 100, "low labels: {}", count(Band::Low));
    }

    #[test]
    fn h_class_queries_use_frequent_labels() {
        let corpus = GeneratorConfig::default().with_seed(1).generate(500);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(2)
            .generate_into(100, &mut interner);
        let freq = corpus.label_frequencies();
        let bands = classify(&freq);
        let set = fb_query_set(&corpus, &heldout, 3);
        for q in set.iter().filter(|q| q.class == FbClass::H) {
            let has_high = q
                .query
                .nodes()
                .any(|n| bands[q.query.label(n).id() as usize] == Some(Band::High));
            assert!(
                has_high,
                "H query of size {} lacks a high-band label",
                q.size
            );
        }
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn class_and_group_display_match_paper_tables() {
        let names: Vec<String> = FbClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, ["L", "M", "ML", "H", "HL", "HM", "HML"]);
        let groups: Vec<String> = WhGroup::ALL.iter().map(|g| g.to_string()).collect();
        assert_eq!(groups, ["Who", "Which", "Where", "What"]);
    }

    #[test]
    fn wh_templates_are_structure_only() {
        // No lexical leaves: every label is an uppercase tag or
        // punctuation, mirroring "removed ... the leaves that contain
        // terms" (§6.1).
        let mut li = LabelInterner::new();
        for q in wh_query_set(&mut li) {
            for n in q.query.nodes() {
                let name = li.resolve(q.query.label(n));
                assert!(
                    name.chars().all(|c| c.is_ascii_uppercase()) || name == "," || name == ".",
                    "{} in {}",
                    name,
                    q.text
                );
            }
        }
    }
}
