//! Corpus structural statistics (§4.1 of the paper).

use crate::generator::Corpus;

/// Aggregate structural statistics of a corpus; the quantities §4.1
/// reports for the AQUAINT sample (average internal branching 1.52, only
/// two nodes with branching > 10 among 50k, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of sentences (trees).
    pub sentences: usize,
    /// Total nodes over all trees.
    pub total_nodes: usize,
    /// Mean tree size.
    pub avg_tree_size: f64,
    /// Number of internal (non-leaf) nodes.
    pub internal_nodes: usize,
    /// Mean branching factor over internal nodes.
    pub avg_internal_branching: f64,
    /// Largest branching factor seen.
    pub max_branching: usize,
    /// `histogram[b]` = number of internal nodes with branching factor
    /// `b` (index 0 unused).
    pub branching_histogram: Vec<usize>,
    /// Number of distinct labels.
    pub distinct_labels: usize,
}

impl CorpusStats {
    /// Computes statistics over `corpus`.
    pub fn compute(corpus: &Corpus) -> Self {
        let mut total_nodes = 0usize;
        let mut internal_nodes = 0usize;
        let mut child_edges = 0usize;
        let mut max_branching = 0usize;
        let mut histogram: Vec<usize> = Vec::new();
        let mut seen = vec![false; corpus.interner().len()];
        for t in corpus.trees() {
            total_nodes += t.len();
            for n in t.nodes() {
                seen[t.label(n).id() as usize] = true;
                let b = t.branching(n);
                if b > 0 {
                    internal_nodes += 1;
                    child_edges += b;
                    max_branching = max_branching.max(b);
                    if histogram.len() <= b {
                        histogram.resize(b + 1, 0);
                    }
                    histogram[b] += 1;
                }
            }
        }
        let sentences = corpus.len();
        CorpusStats {
            sentences,
            total_nodes,
            avg_tree_size: if sentences == 0 {
                0.0
            } else {
                total_nodes as f64 / sentences as f64
            },
            internal_nodes,
            avg_internal_branching: if internal_nodes == 0 {
                0.0
            } else {
                child_edges as f64 / internal_nodes as f64
            },
            max_branching,
            branching_histogram: histogram,
            distinct_labels: seen.iter().filter(|&&s| s).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    #[test]
    fn stats_of_generated_corpus() {
        let corpus = GeneratorConfig::default().with_seed(5).generate(300);
        let stats = CorpusStats::compute(&corpus);
        assert_eq!(stats.sentences, 300);
        assert!(stats.total_nodes > 300 * 10);
        assert!(stats.avg_tree_size > 10.0);
        assert!(stats.avg_internal_branching > 1.0);
        assert!(stats.max_branching >= 2);
        assert_eq!(
            stats.branching_histogram.iter().sum::<usize>(),
            stats.internal_nodes
        );
        assert!(stats.distinct_labels > 30);
    }

    #[test]
    fn empty_corpus_stats() {
        let corpus = Corpus::from_trees(Vec::new(), si_parsetree::LabelInterner::new());
        let stats = CorpusStats::compute(&corpus);
        assert_eq!(stats.sentences, 0);
        assert_eq!(stats.avg_tree_size, 0.0);
        assert_eq!(stats.avg_internal_branching, 0.0);
    }
}
