//! Self-contained seeded PRNG with a `rand::StdRng`-shaped surface.
//!
//! The build environment has no access to crates.io, so the generator
//! and query-set construction use this xoshiro256** implementation
//! instead of the `rand` crate. Only determinism per seed matters for
//! the experiments — the exact stream differs from `rand::StdRng`.

/// Seeded PRNG (xoshiro256**, seeded through splitmix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (mirrors
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_in(self, range)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

/// Types samplable from their standard distribution.
pub trait Sample: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

/// Integer types supporting uniform range sampling.
pub trait SampleRange: Sized {
    /// Draws uniformly from `range`.
    fn sample_in(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_in(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire); span is tiny relative
                // to 2^64 so a single rejection loop iteration is rare.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                range.start + ((m >> 64) as u64) as Self
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
