//! Synthetic treebank generation and query-set construction.
//!
//! Substitutes for the paper's data pipeline (AQUAINT English news parsed
//! with the Stanford parser — see DESIGN.md §4): a seeded PCFG over the
//! Penn Treebank tag set produces corpora whose structural statistics
//! match what §4.1 of the paper reports, and the two query workloads of
//! §6.1 (the WH query-set and the FB query-set) are constructed by the
//! same procedures the authors describe.

pub mod generator;
pub mod queryset;
pub mod rng;
pub mod stats;

pub use generator::{Corpus, GeneratorConfig};
pub use queryset::{fb_query_set, wh_query_set, FbClass, FbQuery, WhGroup, WhQuery};
pub use stats::CorpusStats;
