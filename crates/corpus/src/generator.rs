//! Seeded PCFG treebank generator over the Penn Treebank tag set.
//!
//! Substitute for the paper's dataset (AQUAINT news parsed with the
//! Stanford parser); DESIGN.md §4 documents why this preserves the
//! behaviour the experiments depend on. The grammar is hand-tuned so the
//! generated corpora reproduce the structural statistics §4.1 reports:
//!
//! * average internal branching factor ≈ 1.5 (many unary chains);
//! * nodes with branching factor > 10 are very rare;
//! * tree sizes cluster around 25–90 nodes (≈ 8–25-word sentences);
//! * a finite grammar ⇒ near-linear growth of unique subtrees (Fig. 2);
//! * Zipf-distributed lexical leaves ⇒ realistic H/M/L label classes for
//!   the FB query workload.
//!
//! Generation is fully deterministic from the seed.

use crate::rng::StdRng;

use si_parsetree::{Label, LabelInterner, ParseTree, TreeBuilder};

/// A compiled grammar symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    /// Nonterminal: index into `Pcfg::rules`.
    Nt(usize),
    /// Preterminal POS tag: index into `Pcfg::lexicons`.
    Pos(usize),
}

#[derive(Debug, Clone)]
struct Rule {
    rhs: Vec<Sym>,
    weight: f64,
}

/// Vocabulary of one POS tag: either a closed word list or an open,
/// Zipf-distributed synthetic vocabulary.
#[derive(Debug, Clone)]
struct Lexicon {
    tag: String,
    words: Vec<String>,
    /// Cumulative probability over `words`; same length as `words`.
    cum: Vec<f64>,
}

impl Lexicon {
    fn closed(tag: &str, words: &[&str]) -> Self {
        // Closed-class words are themselves Zipf-ish: earlier = more common.
        Self::from_words(tag, words.iter().map(|w| (*w).to_owned()).collect())
    }

    fn open(tag: &str, prefix: &str, size: usize) -> Self {
        let words = (0..size).map(|i| format!("{prefix}{i}")).collect();
        Self::from_words(tag, words)
    }

    fn from_words(tag: &str, words: Vec<String>) -> Self {
        // Zipf with exponent 1.1 over rank, matching natural-language
        // word-frequency curves closely enough for selectivity classes.
        let mut cum = Vec::with_capacity(words.len());
        let mut total = 0.0;
        for rank in 1..=words.len() {
            total += 1.0 / (rank as f64).powf(1.1);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Self {
            tag: tag.to_owned(),
            words,
            cum,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> &str {
        let u: f64 = rng.gen();
        let i = self
            .cum
            .partition_point(|&c| c < u)
            .min(self.words.len() - 1);
        &self.words[i]
    }
}

/// A compiled probabilistic context-free grammar.
struct Pcfg {
    nt_names: Vec<String>,
    /// Rules per nonterminal, with cumulative weights for sampling.
    rules: Vec<Vec<Rule>>,
    cum: Vec<Vec<f64>>,
    /// Per nonterminal, the rule reaching leaves fastest (for the depth cap).
    min_rule: Vec<usize>,
    lexicons: Vec<Lexicon>,
    start: usize,
}

impl Pcfg {
    /// The default "English news" grammar; see module docs.
    fn english_news() -> Self {
        // (lhs, rhs, weight). Symbols that name a lexicon are POS tags.
        const RULES: &[(&str, &[&str], f64)] = &[
            ("S", &["NP", "VP"], 48.0),
            ("S", &["NP", "VP", "."], 14.0),
            ("S", &["ADVP", ",", "NP", "VP"], 6.0),
            ("S", &["PP", ",", "NP", "VP"], 7.0),
            ("S", &["SBAR", ",", "NP", "VP"], 4.0),
            ("S", &["S", "CC", "S"], 3.5),
            ("S", &["VP"], 5.0),
            ("S", &["NP", "ADVP", "VP"], 4.0),
            ("S", &["NP", "VP", ",", "SBAR"], 3.0),
            ("NP", &["DT", "NN"], 16.0),
            ("NP", &["DT", "JJ", "NN"], 9.0),
            ("NP", &["NN"], 8.0),
            ("NP", &["NNS"], 6.5),
            ("NP", &["NNP"], 7.5),
            ("NP", &["NNP", "NNP"], 4.0),
            ("NP", &["DT", "NNS"], 4.5),
            ("NP", &["PRP"], 6.0),
            ("NP", &["NP", "PP"], 11.0),
            ("NP", &["JJ", "NNS"], 4.0),
            ("NP", &["DT", "JJ", "JJ", "NN"], 2.0),
            ("NP", &["NP", "SBAR"], 3.0),
            ("NP", &["NP", "CC", "NP"], 2.5),
            ("NP", &["CD", "NNS"], 2.5),
            ("NP", &["DT", "NN", "NN"], 4.0),
            ("NP", &["NP", ",", "NP", ","], 1.5),
            ("NP", &["QP", "NNS"], 1.0),
            // A rare long coordination: the source of high-branching nodes.
            (
                "NP",
                &["NP", ",", "NP", ",", "NP", ",", "NP", "CC", "NP"],
                0.2,
            ),
            ("VP", &["VBZ", "NP"], 12.0),
            ("VP", &["VBD", "NP"], 10.0),
            ("VP", &["VBZ"], 3.5),
            ("VP", &["VBD"], 3.0),
            ("VP", &["MD", "VP"], 4.0),
            ("VP", &["VB", "NP"], 4.0),
            ("VP", &["VBZ", "PP"], 5.5),
            ("VP", &["VBD", "PP"], 5.0),
            ("VP", &["VBP", "NP"], 4.5),
            ("VP", &["VBZ", "NP", "PP"], 5.5),
            ("VP", &["VBD", "NP", "PP"], 5.0),
            ("VP", &["VBZ", "SBAR"], 4.0),
            ("VP", &["VBD", "SBAR"], 3.5),
            ("VP", &["VBG", "NP"], 3.0),
            ("VP", &["VBN", "PP"], 3.0),
            ("VP", &["VP", "CC", "VP"], 2.0),
            ("VP", &["VBZ", "ADJP"], 3.5),
            ("VP", &["VBD", "ADJP"], 3.0),
            ("VP", &["TO", "VP"], 2.5),
            ("VP", &["VBZ", "NP", "SBAR"], 1.5),
            ("PP", &["IN", "NP"], 90.0),
            ("PP", &["TO", "NP"], 8.0),
            ("PP", &["IN", "S"], 2.0),
            ("SBAR", &["IN", "S"], 45.0),
            ("SBAR", &["WHNP", "S"], 30.0),
            ("SBAR", &["WHADVP", "S"], 15.0),
            ("SBAR", &["S"], 10.0),
            ("ADJP", &["JJ"], 55.0),
            ("ADJP", &["RB", "JJ"], 25.0),
            ("ADJP", &["JJ", "PP"], 15.0),
            ("ADJP", &["JJ", "CC", "JJ"], 5.0),
            ("ADVP", &["RB"], 80.0),
            ("ADVP", &["RB", "RB"], 12.0),
            ("ADVP", &["RB", "PP"], 8.0),
            ("WHNP", &["WP"], 50.0),
            ("WHNP", &["WDT"], 25.0),
            ("WHNP", &["WDT", "NN"], 25.0),
            ("WHADVP", &["WRB"], 100.0),
            ("QP", &["RB", "CD"], 40.0),
            ("QP", &["CD", "CD"], 30.0),
            ("QP", &["IN", "CD"], 30.0),
        ];

        let lexicons = vec![
            Lexicon::open("NN", "noun", 4000),
            Lexicon::open("NNS", "nouns", 2500),
            Lexicon::open("NNP", "name", 3000),
            Lexicon::open("JJ", "adj", 1800),
            Lexicon::open("VB", "verb", 900),
            Lexicon::open("VBZ", "verbz", 700),
            Lexicon::open("VBD", "verbd", 800),
            Lexicon::open("VBP", "verbp", 500),
            Lexicon::open("VBG", "verbg", 500),
            Lexicon::open("VBN", "verbn", 550),
            Lexicon::open("RB", "adv", 600),
            Lexicon::open("CD", "num", 900),
            Lexicon::closed(
                "DT",
                &[
                    "the", "a", "an", "this", "that", "these", "those", "some", "no", "every",
                ],
            ),
            Lexicon::closed(
                "IN",
                &[
                    "of", "in", "for", "on", "with", "at", "by", "from", "as", "about", "after",
                    "because", "while", "if", "though", "since", "before", "against", "during",
                    "under",
                ],
            ),
            Lexicon::closed("TO", &["to"]),
            Lexicon::closed("CC", &["and", "or", "but", "nor", "yet"]),
            Lexicon::closed(
                "PRP",
                &[
                    "it", "he", "they", "she", "we", "i", "you", "them", "him", "her",
                ],
            ),
            Lexicon::closed(
                "MD",
                &["will", "would", "can", "could", "may", "should", "must"],
            ),
            Lexicon::closed("WP", &["who", "what", "whom"]),
            Lexicon::closed("WDT", &["which", "that"]),
            Lexicon::closed("WRB", &["where", "when", "why", "how"]),
            Lexicon::closed(",", &[","]),
            Lexicon::closed(".", &["."]),
        ];

        let mut nt_names: Vec<String> = Vec::new();
        for (lhs, _, _) in RULES {
            if !nt_names.iter().any(|n| n == lhs) {
                nt_names.push((*lhs).to_owned());
            }
        }
        let nt_index = |name: &str, nts: &[String]| nts.iter().position(|n| n == name);
        let pos_index = |name: &str| lexicons.iter().position(|l| l.tag == name);

        let mut rules: Vec<Vec<Rule>> = vec![Vec::new(); nt_names.len()];
        for (lhs, rhs, weight) in RULES {
            let lhs_idx = nt_index(lhs, &nt_names).expect("lhs is a nonterminal");
            let rhs: Vec<Sym> = rhs
                .iter()
                .map(|s| {
                    if let Some(i) = nt_index(s, &nt_names) {
                        Sym::Nt(i)
                    } else if let Some(i) = pos_index(s) {
                        Sym::Pos(i)
                    } else {
                        panic!("unknown grammar symbol {s}")
                    }
                })
                .collect();
            rules[lhs_idx].push(Rule {
                rhs,
                weight: *weight,
            });
        }

        let cum: Vec<Vec<f64>> = rules
            .iter()
            .map(|rs| {
                let total: f64 = rs.iter().map(|r| r.weight).sum();
                let mut acc = 0.0;
                rs.iter()
                    .map(|r| {
                        acc += r.weight / total;
                        acc
                    })
                    .collect()
            })
            .collect();

        // The "smallest" rule per NT: fewest nonterminals, then fewest
        // symbols; used when the depth cap forces termination. The chosen
        // rule must not be (mutually) recursive, which holds for this
        // grammar: every NT has a rule with zero NT symbols except S/SBAR,
        // whose minimal rules only reach NTs with zero-NT minimal rules.
        let min_rule: Vec<usize> = rules
            .iter()
            .map(|rs| {
                let mut best = 0;
                let score = |r: &Rule| {
                    let nts = r.rhs.iter().filter(|s| matches!(s, Sym::Nt(_))).count();
                    (nts, r.rhs.len())
                };
                for (i, r) in rs.iter().enumerate() {
                    if score(r) < score(&rs[best]) {
                        best = i;
                    }
                }
                best
            })
            .collect();

        Pcfg {
            start: nt_index("S", &nt_names).unwrap(),
            nt_names,
            rules,
            cum,
            min_rule,
            lexicons,
        }
    }

    fn sample_rule(&self, nt: usize, depth: usize, max_depth: usize, rng: &mut StdRng) -> &Rule {
        if depth >= max_depth {
            return &self.rules[nt][self.min_rule[nt]];
        }
        let u: f64 = rng.gen();
        let i = self.cum[nt]
            .partition_point(|&c| c < u)
            .min(self.rules[nt].len() - 1);
        &self.rules[nt][i]
    }
}

/// Configuration for the synthetic treebank generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; corpora are fully deterministic given the seed.
    pub seed: u64,
    /// Depth at which expansion is forced towards leaves. The default (11)
    /// keeps trees in the 20–100 node band like news-wire parses.
    pub max_depth: usize,
    /// Whether POS tags expand to lexical word leaves. The paper indexes
    /// words (queries like `NNS(agouti)` need them); structure-only
    /// corpora are useful for decomposition experiments.
    pub with_words: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            max_depth: 11,
            with_words: true,
        }
    }
}

impl GeneratorConfig {
    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `n` sentences into a fresh [`Corpus`].
    pub fn generate(&self, n: usize) -> Corpus {
        let mut interner = LabelInterner::new();
        let trees = self.generate_into(n, &mut interner);
        Corpus { trees, interner }
    }

    /// Generates `n` sentences, interning labels into an existing
    /// interner (used to share label ids between an indexed corpus and a
    /// held-out query corpus).
    pub fn generate_into(&self, n: usize, interner: &mut LabelInterner) -> Vec<ParseTree> {
        let pcfg = Pcfg::english_news();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Pre-intern tags so label ids are stable regardless of word order.
        let nt_labels: Vec<Label> = pcfg.nt_names.iter().map(|s| interner.intern(s)).collect();
        let pos_labels: Vec<Label> = pcfg
            .lexicons
            .iter()
            .map(|l| interner.intern(&l.tag))
            .collect();
        let mut trees = Vec::with_capacity(n);
        for _ in 0..n {
            let mut b = TreeBuilder::new();
            self.expand(
                &pcfg,
                pcfg.start,
                0,
                &mut rng,
                &mut b,
                &nt_labels,
                &pos_labels,
                interner,
            );
            trees.push(b.finish().expect("generator emits balanced trees"));
        }
        trees
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        pcfg: &Pcfg,
        nt: usize,
        depth: usize,
        rng: &mut StdRng,
        b: &mut TreeBuilder,
        nt_labels: &[Label],
        pos_labels: &[Label],
        interner: &mut LabelInterner,
    ) {
        b.open(nt_labels[nt]);
        // Sampling happens before recursion so the expansion order is
        // deterministic in document order.
        let rule = pcfg.sample_rule(nt, depth, self.max_depth, rng).clone();
        for sym in &rule.rhs {
            match *sym {
                Sym::Nt(child) => self.expand(
                    pcfg,
                    child,
                    depth + 1,
                    rng,
                    b,
                    nt_labels,
                    pos_labels,
                    interner,
                ),
                Sym::Pos(pos) => {
                    b.open(pos_labels[pos]);
                    if self.with_words {
                        let word = pcfg.lexicons[pos].sample(rng).to_owned();
                        b.leaf(interner.intern(&word));
                    }
                    b.close();
                }
            }
        }
        b.close();
    }
}

/// An in-memory corpus: parse trees plus their shared label interner.
#[derive(Debug, Clone)]
pub struct Corpus {
    trees: Vec<ParseTree>,
    interner: LabelInterner,
}

impl Corpus {
    /// Wraps pre-built trees (e.g. imported from PTB files).
    pub fn from_trees(trees: Vec<ParseTree>, interner: LabelInterner) -> Self {
        Self { trees, interner }
    }

    /// The trees, indexable by `TreeId as usize`.
    pub fn trees(&self) -> &[ParseTree] {
        &self.trees
    }

    /// The shared label interner.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Mutable interner access (parsing queries against this corpus
    /// interns their labels here).
    pub fn interner_mut(&mut self) -> &mut LabelInterner {
        &mut self.interner
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Occurrence count per label across all trees, indexed by label id.
    pub fn label_frequencies(&self) -> Vec<u64> {
        let mut freq = vec![0u64; self.interner.len()];
        for t in &self.trees {
            for n in t.nodes() {
                freq[t.label(n).id() as usize] += 1;
            }
        }
        freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = GeneratorConfig::default().with_seed(7).generate(50);
        let b = GeneratorConfig::default().with_seed(7).generate(50);
        assert_eq!(a.trees(), b.trees());
        let c = GeneratorConfig::default().with_seed(8).generate(50);
        assert_ne!(a.trees(), c.trees());
    }

    #[test]
    fn trees_are_valid_and_rooted_at_s() {
        let corpus = GeneratorConfig::default().generate(200);
        for t in corpus.trees() {
            assert_eq!(t.validate(), Ok(()));
            assert_eq!(corpus.interner().resolve(t.label(t.root())), "S");
        }
    }

    #[test]
    fn structural_statistics_match_paper() {
        let corpus = GeneratorConfig::default().with_seed(42).generate(2000);
        let mut total_nodes = 0usize;
        let mut internal = 0usize;
        let mut children = 0usize;
        let mut max_branching = 0usize;
        let mut over_10 = 0usize;
        for t in corpus.trees() {
            total_nodes += t.len();
            for n in t.nodes() {
                let b = t.branching(n);
                if b > 0 {
                    internal += 1;
                    children += b;
                    max_branching = max_branching.max(b);
                    if b > 10 {
                        over_10 += 1;
                    }
                }
            }
        }
        let avg_size = total_nodes as f64 / corpus.len() as f64;
        let avg_branching = children as f64 / internal as f64;
        assert!(
            (20.0..=110.0).contains(&avg_size),
            "avg tree size {avg_size}"
        );
        assert!(
            (1.2..=2.2).contains(&avg_branching),
            "avg internal branching {avg_branching} (paper: 1.52)"
        );
        // High-branching nodes must be possible but very rare (§4.1).
        assert!(
            (over_10 as f64) < internal as f64 * 0.001,
            "{over_10} of {internal} internal nodes exceed branching 10"
        );
    }

    #[test]
    fn words_are_zipf_distributed() {
        let corpus = GeneratorConfig::default().with_seed(3).generate(1000);
        let freq = corpus.label_frequencies();
        // `the` should be among the most frequent leaf labels.
        let the = corpus.interner().get("the").expect("'the' appears");
        let noun0 = corpus.interner().get("noun0");
        assert!(noun0.is_some(), "most common noun appears");
        assert!(freq[the.id() as usize] > 200, "'the' is high frequency");
        // Some nouns appear once or never: a long tail exists.
        let rare = (0..corpus.interner().len())
            .filter(|&i| freq[i] == 1)
            .count();
        assert!(rare > 50, "expected a long tail, got {rare} singletons");
    }

    #[test]
    fn structure_only_mode_has_no_word_leaves() {
        let config = GeneratorConfig {
            with_words: false,
            ..GeneratorConfig::default()
        };
        let corpus = config.generate(50);
        for t in corpus.trees() {
            for n in t.nodes() {
                if t.is_leaf(n) {
                    let name = corpus.interner().resolve(t.label(n));
                    assert!(
                        name.chars().next().unwrap().is_ascii_uppercase()
                            || name == ","
                            || name == ".",
                        "leaf {name} should be a POS tag"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_interner_keeps_ids_stable() {
        let mut interner = LabelInterner::new();
        let config = GeneratorConfig::default();
        let a = config.generate_into(10, &mut interner);
        let b = GeneratorConfig::default()
            .with_seed(99)
            .generate_into(10, &mut interner);
        // Tags interned once: the S label of both corpora is the same id.
        assert_eq!(a[0].label(a[0].root()), b[0].label(b[0].root()));
    }
}

#[cfg(test)]
mod ptb_round_trip_tests {
    use super::*;
    use si_parsetree::ptb;

    #[test]
    fn generated_corpus_survives_ptb_export_import() {
        // The full pipeline a real user follows: generate -> write PTB
        // text -> re-parse -> identical structure and labels.
        let corpus = GeneratorConfig::default().with_seed(33).generate(40);
        let text: String = corpus
            .trees()
            .iter()
            .map(|t| ptb::write(t, corpus.interner()) + "\n")
            .collect();
        let mut li2 = LabelInterner::new();
        let back = ptb::parse_corpus(&text, &mut li2).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.trees().iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for n in a.nodes() {
                assert_eq!(
                    corpus.interner().resolve(a.label(n)),
                    li2.resolve(b.label(n)),
                    "label at node {}",
                    n.0
                );
                assert_eq!(a.parent(n), b.parent(n));
            }
        }
    }
}
