//! Behavioural tests of the in-memory matcher; these pin the query
//! semantics that every index engine must reproduce.

use si_parsetree::{ptb, LabelInterner, NodeId, ParseTree};
use si_query::{count_matches, match_roots, matcher::Matcher, parse_query, Query};

fn setup(tree_src: &str, query_src: &str) -> (ParseTree, Query, LabelInterner) {
    let mut li = LabelInterner::new();
    let tree = ptb::parse(tree_src, &mut li).unwrap();
    let query = parse_query(query_src, &mut li).unwrap();
    (tree, query, li)
}

fn roots(tree_src: &str, query_src: &str) -> Vec<u32> {
    let (tree, query, _) = setup(tree_src, query_src);
    match_roots(&tree, &query)
        .into_iter()
        .map(|n| n.0)
        .collect()
}

#[test]
fn single_label_matches_every_occurrence() {
    assert_eq!(roots("(S (NP (NN dog)) (NP (NN cat)))", "NP"), vec![1, 4]);
    assert_eq!(roots("(S (NP (NN dog)))", "XX"), Vec::<u32>::new());
}

#[test]
fn parent_child_requires_direct_edge() {
    // S -> NP exists, S -> NN does not (NN is a grandchild).
    assert_eq!(roots("(S (NP (NN dog)))", "S(NP)"), vec![0]);
    assert_eq!(roots("(S (NP (NN dog)))", "S(NN)"), Vec::<u32>::new());
}

#[test]
fn descendant_axis_reaches_any_depth() {
    assert_eq!(roots("(S (NP (NN dog)))", "S(//NN)"), vec![0]);
    assert_eq!(roots("(S (NP (NN dog)))", "S(//dog)"), vec![0]);
    // Descendant must be proper: an S inside an S.
    assert_eq!(roots("(S (NP x))", "S(//S)"), Vec::<u32>::new());
    assert_eq!(roots("(S (SBAR (S (NP x))))", "S(//S)"), vec![0]);
}

#[test]
fn unordered_children() {
    // Query lists children in the opposite order of the data.
    assert_eq!(roots("(NP (DT the) (NN dog))", "NP(NN)(DT)"), vec![0]);
}

#[test]
fn sibling_injectivity_for_child_axis() {
    // NP(NN)(NN) needs two distinct NN children.
    assert_eq!(roots("(NP (NN a))", "NP(NN)(NN)"), Vec::<u32>::new());
    assert_eq!(roots("(NP (NN a) (NN b))", "NP(NN)(NN)"), vec![0]);
    assert_eq!(roots("(NP (NN a) (JJ x) (NN b))", "NP(NN)(NN)"), vec![0]);
}

#[test]
fn descendant_children_are_not_distinctness_constrained() {
    // Both //NN query nodes may map to the same data node.
    assert_eq!(roots("(S (NP (NN a)))", "S(//NN)(//NN)"), vec![0]);
}

#[test]
fn injectivity_uses_bipartite_matching_not_greedy() {
    // Query NP(NN(a))(NN): a greedy matcher might bind the bare NN to the
    // NN(a) child first and fail; bipartite matching must succeed.
    assert_eq!(roots("(NP (NN a) (NN))", "NP(NN(a))(NN)"), vec![0]);
    assert_eq!(roots("(NP (NN) (NN))", "NP(NN(a))(NN)"), Vec::<u32>::new());
}

#[test]
fn paper_figure_1_example() {
    // The motivating example: query S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))
    // matches the parsed sentence even with intervening modifiers.
    let sentence = "(ROOT (S (NP (DT The) (NNS agouti)) (VP (VBZ is) (NP (DT a) \
                    (JJ short-tailed) (, ,) (JJ plant-eating) (NN rodent)))))";
    let (tree, query, _) = setup(sentence, "S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))");
    let roots = match_roots(&tree, &query);
    assert_eq!(roots.len(), 1);
    assert_eq!(tree.level(roots[0]), 1); // the S under ROOT
}

#[test]
fn deep_query_embeds_at_multiple_roots() {
    let src = "(S (VP (VP (VBZ x)) (VP (VBZ y))))";
    assert_eq!(roots(src, "VP(VBZ)"), vec![2, 5]);
    assert_eq!(roots(src, "VP(VP(VBZ))"), vec![1]);
}

#[test]
fn count_matches_sums_over_corpus() {
    let mut li = LabelInterner::new();
    let t1 = ptb::parse("(S (NP (NN a)) (NP (NN b)))", &mut li).unwrap();
    let t2 = ptb::parse("(S (NP (NN c)))", &mut li).unwrap();
    let q = parse_query("NP(NN)", &mut li).unwrap();
    assert_eq!(count_matches([&t1, &t2], &q), 3);
}

#[test]
fn embeddings_enumeration_counts() {
    let (tree, query, _) = setup("(NP (NN a) (NN b) (NN c))", "NP(NN)(NN)");
    let m = Matcher::new(&tree, &query);
    let embs = m.embeddings_at(NodeId(0), 0);
    // 3 choices for the first NN times 2 for the second = 6 ordered pairs.
    assert_eq!(embs.len(), 6);
    for e in &embs {
        assert_eq!(e[0], NodeId(0));
        assert_ne!(e[1], e[2]);
    }
    // Limit is respected.
    assert_eq!(m.embeddings_at(NodeId(0), 4).len(), 4);
    // No embeddings at a non-matching node.
    assert!(m.embeddings_at(NodeId(1), 0).is_empty());
}

#[test]
fn embeddings_with_descendant_axis() {
    let (tree, query, _) = setup("(S (NP (NP (NN a))))", "S(//NN)");
    let m = Matcher::new(&tree, &query);
    let embs = m.embeddings_at(NodeId(0), 0);
    assert_eq!(embs.len(), 1);
    assert_eq!(embs[0][1], NodeId(3));
}

#[test]
fn embeddings_agree_with_matches_at() {
    let (tree, query, _) = setup(
        "(S (NP (DT the) (NN dog)) (VP (VBZ barks) (NP (NN now))))",
        "S(NP(NN))(VP)",
    );
    let m = Matcher::new(&tree, &query);
    for d in tree.nodes() {
        assert_eq!(
            m.matches_at(d),
            !m.embeddings_at(d, 0).is_empty(),
            "node {}",
            d.0
        );
    }
}

#[test]
fn mixed_axes_query() {
    let src = "(S (NP (DT the) (NN dog)) (VP (VBZ sees) (NP (DT a) (NN cat))))";
    // VP with direct VBZ and some NN below.
    assert_eq!(roots(src, "VP(VBZ)(//NN)"), vec![6]);
    // S with a NN anywhere and a direct NP.
    assert_eq!(roots(src, "S(NP)(//NN)"), vec![0]);
}

#[test]
fn query_larger_than_tree_never_matches() {
    assert_eq!(roots("(NP (NN a))", "NP(NN)(NN)(NN)"), Vec::<u32>::new());
}
