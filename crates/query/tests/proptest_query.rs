//! Property tests for the query layer: the parser never panics on
//! arbitrary input, accepts everything the writer produces, and the
//! matcher respects basic monotonicity laws.
//!
//! Requires the external `proptest` crate; compiled out by default
//! because this build environment is offline (enable the `proptest`
//! feature after adding the dependency to run them).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use si_parsetree::{ptb, LabelInterner};
use si_query::{match_roots, parse_query, write_query, Axis, Query, QueryBuilder};

#[derive(Debug, Clone)]
struct Shape {
    label: u8,
    axis_bit: bool,
    children: Vec<Shape>,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = ((0u8..6), any::<bool>()).prop_map(|(label, axis_bit)| Shape {
        label,
        axis_bit,
        children: Vec::new(),
    });
    leaf.prop_recursive(4, 20, 3, |inner| {
        ((0u8..6), any::<bool>(), prop::collection::vec(inner, 0..3)).prop_map(
            |(label, axis_bit, children)| Shape {
                label,
                axis_bit,
                children,
            },
        )
    })
}

fn build_query(shape: &Shape, li: &mut LabelInterner) -> Query {
    fn go(s: &Shape, b: &mut QueryBuilder, li: &mut LabelInterner) {
        let axis = if s.axis_bit {
            Axis::Descendant
        } else {
            Axis::Child
        };
        b.open(li.intern(&format!("Q{}", s.label)), axis);
        for c in &s.children {
            go(c, b, li);
        }
        b.close();
    }
    let mut b = QueryBuilder::new();
    go(shape, &mut b, li);
    b.finish().unwrap()
}

proptest! {
    #[test]
    fn parser_never_panics(input in "[A-Za-z0-9()/ ]{0,60}") {
        let mut li = LabelInterner::new();
        let _ = parse_query(&input, &mut li); // Ok or Err, never panic
    }

    #[test]
    fn ptb_parser_never_panics(input in "[A-Za-z0-9() .#\n]{0,80}") {
        let mut li = LabelInterner::new();
        let _ = ptb::parse(&input, &mut li);
        let _ = ptb::parse_corpus(&input, &mut li);
    }

    #[test]
    fn write_parse_round_trip(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let q = build_query(&shape, &mut li);
        let text = write_query(&q, &li);
        let back = parse_query(&text, &mut li).expect("writer output parses");
        prop_assert_eq!(back.len(), q.len());
        for n in q.nodes() {
            prop_assert_eq!(q.label(n), back.label(n));
            // Root axis is normalized to Child by the builder.
            if q.parent(n).is_some() {
                prop_assert_eq!(q.axis(n), back.axis(n));
            }
        }
    }

    #[test]
    fn relaxing_child_to_descendant_only_adds_matches(shape in shape_strategy()) {
        // Turning every / edge into // can only grow the match set.
        let mut li = LabelInterner::new();
        let strict = build_query(&shape, &mut li);
        let mut relaxed_shape = shape.clone();
        fn relax(s: &mut Shape) {
            s.axis_bit = true;
            for c in &mut s.children {
                relax(c);
            }
        }
        relax(&mut relaxed_shape);
        let relaxed = build_query(&relaxed_shape, &mut li);
        // A small data tree over the same label alphabet.
        let tree = ptb::parse(
            "(Q0 (Q1 (Q2 (Q3) (Q4)) (Q5)) (Q2 (Q1 (Q0))) (Q3 (Q4 (Q5))))",
            &mut li,
        )
        .unwrap();
        let strict_roots = match_roots(&tree, &strict);
        let relaxed_roots = match_roots(&tree, &relaxed);
        for r in &strict_roots {
            prop_assert!(
                relaxed_roots.contains(r),
                "strict match at {} lost after relaxation",
                r.0
            );
        }
    }

    #[test]
    fn single_node_queries_match_label_occurrences(label in 0u8..6) {
        let mut li = LabelInterner::new();
        let tree = ptb::parse("(Q0 (Q1 (Q2) (Q1)) (Q3 (Q1)))", &mut li).unwrap();
        let q = parse_query(&format!("Q{label}"), &mut li).unwrap();
        let roots = match_roots(&tree, &q);
        let expected = tree
            .nodes()
            .filter(|&n| tree.label(n) == q.label(q.root()))
            .count();
        prop_assert_eq!(roots.len(), expected);
    }
}

proptest! {
    #[test]
    fn matches_iff_embeddings_exist(tree_shape in shape_strategy(), query_shape in shape_strategy()) {
        use si_query::matcher::Matcher;
        use si_parsetree::TreeBuilder;
        // Build a data tree from the first shape (ignore its axis bits).
        fn build_tree(s: &Shape, b: &mut TreeBuilder, li: &mut LabelInterner) {
            b.open(li.intern(&format!("Q{}", s.label)));
            for c in &s.children {
                build_tree(c, b, li);
            }
            b.close();
        }
        let mut li = LabelInterner::new();
        let mut tb = TreeBuilder::new();
        build_tree(&tree_shape, &mut tb, &mut li);
        let tree = tb.finish().unwrap();
        let query = build_query(&query_shape, &mut li);
        let m = Matcher::new(&tree, &query);
        for d in tree.nodes() {
            let has_embedding = !m.embeddings_at(d, 1).is_empty();
            prop_assert_eq!(m.matches_at(d), has_embedding, "node {}", d.0);
        }
    }
}
