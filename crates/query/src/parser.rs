//! Textual query syntax.
//!
//! ```text
//! query := node
//! node  := LABEL child*
//! child := '(' axis? node ')'
//! axis  := '//' | '/'          (default '/')
//! LABEL := [^()/ \t\n]+
//! ```
//!
//! Examples: `NN`, `NP(DT)(NN)`, `S(NP(NNS(agouti)))(VP(//NN))`.
//! `A//B/C` from the paper's §3 would be written `A(//B)(/C)`; the
//! bracketed form generalizes to arbitrary tree shapes.

use si_parsetree::LabelInterner;

use crate::model::{Axis, QNodeId, Query, QueryBuilder};

/// Errors from [`parse_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// Input ended while a bracket was open.
    UnexpectedEof,
    /// Unexpected character at byte offset.
    Unexpected(usize, char),
    /// A label was required at byte offset.
    MissingLabel(usize),
    /// Trailing input after the query tree.
    Trailing(usize),
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryParseError::UnexpectedEof => write!(f, "unexpected end of query"),
            QueryParseError::Unexpected(pos, c) => {
                write!(f, "unexpected character {c:?} at byte {pos}")
            }
            QueryParseError::MissingLabel(pos) => write!(f, "expected a label at byte {pos}"),
            QueryParseError::Trailing(pos) => write!(f, "trailing input at byte {pos}"),
        }
    }
}

impl std::error::Error for QueryParseError {}

/// Parses the textual query syntax, interning labels into `interner`.
pub fn parse_query(input: &str, interner: &mut LabelInterner) -> Result<Query, QueryParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut b = QueryBuilder::new();
    p.skip_ws();
    p.node(Axis::Child, &mut b, interner)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(QueryParseError::Trailing(p.pos));
    }
    b.finish().ok_or(QueryParseError::UnexpectedEof)
}

/// Renders `query` in the syntax accepted by [`parse_query`].
pub fn write_query(query: &Query, interner: &LabelInterner) -> String {
    let mut out = String::new();
    write_node(query, query.root(), interner, &mut out);
    out
}

fn write_node(query: &Query, n: QNodeId, interner: &LabelInterner, out: &mut String) {
    out.push_str(interner.resolve(query.label(n)));
    for c in query.children(n) {
        out.push('(');
        if query.axis(c) == Axis::Descendant {
            out.push_str("//");
        }
        write_node(query, c, interner, out);
        out.push(')');
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn label(&mut self) -> Option<&str> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'(' || b == b')' || b == b'/' || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        (self.pos > start).then(|| std::str::from_utf8(&self.bytes[start..self.pos]).unwrap())
    }

    fn node(
        &mut self,
        axis: Axis,
        b: &mut QueryBuilder,
        interner: &mut LabelInterner,
    ) -> Result<(), QueryParseError> {
        self.skip_ws();
        let label = self
            .label()
            .map(|t| interner.intern(t))
            .ok_or(QueryParseError::MissingLabel(self.pos))?;
        b.open(label, axis);
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'(') => {
                    self.pos += 1;
                    self.skip_ws();
                    let mut child_axis = Axis::Child;
                    if self.bytes.get(self.pos) == Some(&b'/') {
                        self.pos += 1;
                        if self.bytes.get(self.pos) == Some(&b'/') {
                            self.pos += 1;
                            child_axis = Axis::Descendant;
                        }
                    }
                    self.node(child_axis, b, interner)?;
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b')') => self.pos += 1,
                        Some(&c) => return Err(QueryParseError::Unexpected(self.pos, c as char)),
                        None => return Err(QueryParseError::UnexpectedEof),
                    }
                }
                _ => {
                    b.close();
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_label() {
        let mut li = LabelInterner::new();
        let q = parse_query("NN", &mut li).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(write_query(&q, &li), "NN");
    }

    #[test]
    fn nested_with_axes() {
        let mut li = LabelInterner::new();
        let src = "S(NP(NNS(agouti)))(VP(//NN))";
        let q = parse_query(src, &mut li).unwrap();
        assert_eq!(q.len(), 6);
        assert_eq!(write_query(&q, &li), src);
        let kids: Vec<_> = q.children(q.root()).collect();
        assert_eq!(q.axis(kids[0]), Axis::Child);
        let vp = kids[1];
        let nn = q.children(vp).next().unwrap();
        assert_eq!(q.axis(nn), Axis::Descendant);
    }

    #[test]
    fn explicit_child_axis() {
        let mut li = LabelInterner::new();
        let q = parse_query("A(/B)(//C)", &mut li).unwrap();
        let kids: Vec<_> = q.children(q.root()).collect();
        assert_eq!(q.axis(kids[0]), Axis::Child);
        assert_eq!(q.axis(kids[1]), Axis::Descendant);
        assert_eq!(write_query(&q, &li), "A(B)(//C)");
    }

    #[test]
    fn whitespace_tolerated() {
        let mut li = LabelInterner::new();
        let q = parse_query("  A ( B )  ( // C ) ", &mut li).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn round_trip_random_shapes() {
        let mut li = LabelInterner::new();
        for src in [
            "A",
            "A(B)",
            "A(B)(C)",
            "A(B(C)(D))(E)",
            "A(//B(C))(D(//E))",
            "NP(NN)(NN)",
        ] {
            let q = parse_query(src, &mut li).unwrap();
            assert_eq!(write_query(&q, &li), src, "round trip of {src}");
        }
    }

    #[test]
    fn errors() {
        let mut li = LabelInterner::new();
        assert_eq!(
            parse_query("", &mut li),
            Err(QueryParseError::MissingLabel(0))
        );
        assert!(matches!(
            parse_query("A(B", &mut li),
            Err(QueryParseError::UnexpectedEof)
        ));
        assert!(matches!(
            parse_query("A)B", &mut li),
            Err(QueryParseError::Trailing(_))
        ));
        assert!(matches!(
            parse_query("A(()", &mut li),
            Err(QueryParseError::MissingLabel(_))
        ));
        assert!(matches!(
            parse_query("A(B))", &mut li),
            Err(QueryParseError::Trailing(_))
        ));
    }
}
