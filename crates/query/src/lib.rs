//! Tree queries over syntactically annotated trees.
//!
//! Implements Definitions 2 and 3 of the paper: a query is an unordered
//! labelled tree whose edges carry a navigational axis — parent-child
//! (`/`) or ancestor-descendant (`//`) — and a query *matches* at a data
//! node when an embedding exists that preserves labels and axis
//! relationships.
//!
//! Three pieces live here:
//!
//! * [`Query`] — the query tree model ([`model`]);
//! * [`parse_query`] — a textual syntax, e.g. `S(NP(NNS))(VP(//NN))`
//!   ([`parser`]);
//! * [`matcher`] — the in-memory matcher used as ground truth, as the
//!   *filtering phase* of filter-based coding (§4.4.1) and as the
//!   post-validation step of the baseline systems.
//!
//! # Match semantics
//!
//! The embedding maps `/`-children of the same query node to pairwise
//! distinct data nodes (an occurrence of an index key is a real subtree,
//! whose sibling branches are distinct nodes); `//`-children are
//! unconstrained. This is exactly the semantics the Subtree Index's join
//! phase produces, so all engines agree; see DESIGN.md §5.

pub mod matcher;
pub mod model;
pub mod parser;

pub use matcher::{count_matches, match_roots, matches_at};
pub use model::{Axis, QNodeId, Query, QueryBuilder};
pub use parser::{parse_query, write_query, QueryParseError};
