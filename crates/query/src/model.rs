//! The query tree model (Definition 2).

use si_parsetree::{Label, NodeId, ParseTree};

/// Navigational axis on a query edge (the paper's `ΛE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Parent-child, written `/`.
    Child,
    /// Ancestor-descendant (proper), written `//`.
    Descendant,
}

/// Identifier of a node within one [`Query`]; pre-order rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QNodeId(pub u32);

impl QNodeId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// An unordered tree query. Nodes are stored in pre-order; each non-root
/// node records the axis of the edge from its parent.
///
/// Queries are small (the paper evaluates sizes 1–10), so the
/// representation favours clarity over compactness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    labels: Vec<Label>,
    parent: Vec<Option<u32>>,
    axis: Vec<Axis>, // axis[i] is meaningful for i > 0
    children: Vec<Vec<u32>>,
}

impl Query {
    /// Number of query nodes (`|Q|`).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Always false: queries have at least a root.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The query root.
    pub fn root(&self) -> QNodeId {
        QNodeId(0)
    }

    /// The node's label.
    pub fn label(&self, n: QNodeId) -> Label {
        self.labels[n.index()]
    }

    /// The node's parent, if any.
    pub fn parent(&self, n: QNodeId) -> Option<QNodeId> {
        self.parent[n.index()].map(QNodeId)
    }

    /// Axis of the edge from the node's parent (root: `Axis::Child` by
    /// convention, never consulted).
    pub fn axis(&self, n: QNodeId) -> Axis {
        self.axis[n.index()]
    }

    /// Children of `n` in insertion order (queries are semantically
    /// unordered; the order only affects display).
    pub fn children(&self, n: QNodeId) -> impl Iterator<Item = QNodeId> + '_ {
        self.children[n.index()].iter().map(|&c| QNodeId(c))
    }

    /// Children of `n` reached via a given axis.
    pub fn children_via(&self, n: QNodeId, axis: Axis) -> impl Iterator<Item = QNodeId> + '_ {
        self.children(n).filter(move |&c| self.axis(c) == axis)
    }

    /// All nodes in pre-order.
    pub fn nodes(&self) -> impl Iterator<Item = QNodeId> {
        (0..self.labels.len() as u32).map(QNodeId)
    }

    /// Number of nodes in the subtree rooted at `n` (including `n`),
    /// counting through both axis kinds.
    pub fn subtree_size(&self, n: QNodeId) -> usize {
        1 + self
            .children(n)
            .map(|c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Whether every edge is a parent-child edge.
    pub fn is_child_only(&self) -> bool {
        self.nodes().skip(1).all(|n| self.axis(n) == Axis::Child)
    }

    /// True if some query node has two `/`-children with equal labels.
    ///
    /// Such queries need care during decomposition: two same-label sibling
    /// branches must be mapped to *distinct* data nodes, which root-only
    /// joins cannot always enforce (see DESIGN.md §5).
    pub fn has_sibling_label_clash(&self) -> bool {
        self.nodes().any(|n| {
            let mut labels: Vec<Label> = self
                .children_via(n, Axis::Child)
                .map(|c| self.label(c))
                .collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            labels.len() < before
        })
    }

    /// Builds an all-`/` query mirroring the subtree of `tree` rooted at
    /// `root`, restricted to `keep` (which must be closed under parents up
    /// to `root`). Passing all descendants clones the full subtree.
    pub fn from_tree_subtree(tree: &ParseTree, root: NodeId, keep: &[NodeId]) -> Query {
        let mut b = QueryBuilder::new();
        fn go(tree: &ParseTree, n: NodeId, keep: &[NodeId], b: &mut QueryBuilder) {
            b.open(tree.label(n), Axis::Child);
            for c in tree.children(n) {
                if keep.contains(&c) {
                    go(tree, c, keep, b);
                }
            }
            b.close();
        }
        go(tree, root, keep, &mut b);
        b.finish().expect("subtree is a well-formed query")
    }
}

/// Push-style constructor for [`Query`], mirroring
/// [`si_parsetree::TreeBuilder`].
#[derive(Debug, Default)]
pub struct QueryBuilder {
    labels: Vec<Label>,
    parent: Vec<Option<u32>>,
    axis: Vec<Axis>,
    children: Vec<Vec<u32>>,
    stack: Vec<u32>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a node under the currently open node; `axis` is the edge type
    /// from the parent (ignored for the root).
    pub fn open(&mut self, label: Label, axis: Axis) -> QNodeId {
        let id = self.labels.len() as u32;
        let parent = self.stack.last().copied();
        assert!(
            !(parent.is_none() && id != 0),
            "a Query has exactly one root"
        );
        self.labels.push(label);
        self.parent.push(parent);
        self.axis
            .push(if parent.is_none() { Axis::Child } else { axis });
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p as usize].push(id);
        }
        self.stack.push(id);
        QNodeId(id)
    }

    /// Closes the most recently opened node.
    pub fn close(&mut self) {
        self.stack.pop().expect("close without open");
    }

    /// `open` + `close`.
    pub fn leaf(&mut self, label: Label, axis: Axis) -> QNodeId {
        let id = self.open(label, axis);
        self.close();
        id
    }

    /// Finishes construction; `None` if unbalanced or empty.
    pub fn finish(self) -> Option<Query> {
        if self.labels.is_empty() || !self.stack.is_empty() {
            return None;
        }
        Some(Query {
            labels: self.labels,
            parent: self.parent,
            axis: self.axis,
            children: self.children,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::LabelInterner;

    fn build_sample() -> (Query, LabelInterner) {
        // S(/NP(/NNS))(//VP)
        let mut li = LabelInterner::new();
        let mut b = QueryBuilder::new();
        b.open(li.intern("S"), Axis::Child);
        b.open(li.intern("NP"), Axis::Child);
        b.leaf(li.intern("NNS"), Axis::Child);
        b.close();
        b.leaf(li.intern("VP"), Axis::Descendant);
        b.close();
        (b.finish().unwrap(), li)
    }

    #[test]
    fn structure_and_axes() {
        let (q, li) = build_sample();
        assert_eq!(q.len(), 4);
        assert_eq!(li.resolve(q.label(q.root())), "S");
        let kids: Vec<_> = q.children(q.root()).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(q.axis(kids[0]), Axis::Child);
        assert_eq!(q.axis(kids[1]), Axis::Descendant);
        assert_eq!(q.parent(kids[0]), Some(q.root()));
        assert_eq!(q.parent(q.root()), None);
        assert_eq!(q.subtree_size(q.root()), 4);
        assert_eq!(q.subtree_size(kids[0]), 2);
        assert!(!q.is_child_only());
    }

    #[test]
    fn children_via_filters_by_axis() {
        let (q, _) = build_sample();
        assert_eq!(q.children_via(q.root(), Axis::Child).count(), 1);
        assert_eq!(q.children_via(q.root(), Axis::Descendant).count(), 1);
    }

    #[test]
    fn sibling_label_clash_detection() {
        let mut li = LabelInterner::new();
        let mut b = QueryBuilder::new();
        b.open(li.intern("NP"), Axis::Child);
        b.leaf(li.intern("NN"), Axis::Child);
        b.leaf(li.intern("NN"), Axis::Child);
        b.close();
        let q = b.finish().unwrap();
        assert!(q.has_sibling_label_clash());

        let mut b = QueryBuilder::new();
        b.open(li.intern("NP"), Axis::Child);
        b.leaf(li.intern("NN"), Axis::Child);
        b.leaf(li.intern("NN"), Axis::Descendant); // // sibling doesn't clash
        b.close();
        let q = b.finish().unwrap();
        assert!(!q.has_sibling_label_clash());
    }

    #[test]
    fn from_tree_subtree_restricts_nodes() {
        use si_parsetree::ptb;
        let mut li = LabelInterner::new();
        let t = ptb::parse("(S (NP (DT the) (NN dog)) (VP (VBZ barks)))", &mut li).unwrap();
        // Keep S, NP, VP but not the POS leaves.
        let keep: Vec<NodeId> = t
            .nodes()
            .filter(|&n| {
                let l = li.resolve(t.label(n));
                matches!(l, "S" | "NP" | "VP")
            })
            .collect();
        let q = Query::from_tree_subtree(&t, t.root(), &keep);
        assert_eq!(q.len(), 3);
        assert!(q.is_child_only());
    }

    #[test]
    fn single_node_query() {
        let mut li = LabelInterner::new();
        let mut b = QueryBuilder::new();
        b.leaf(li.intern("NN"), Axis::Child);
        let q = b.finish().unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.is_child_only());
        assert!(!q.has_sibling_label_clash());
    }

    #[test]
    fn unbalanced_rejected() {
        let mut li = LabelInterner::new();
        let mut b = QueryBuilder::new();
        b.open(li.intern("S"), Axis::Child);
        assert!(b.finish().is_none());
    }
}
