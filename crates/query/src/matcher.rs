//! In-memory tree matching (Definition 3).
//!
//! This is the reference implementation of query semantics: a dynamic
//! program that decides, for every (query node, data node) pair, whether
//! the query subtree embeds at the data node. It triples as
//!
//! 1. ground truth for differential tests of all index engines,
//! 2. the *filtering phase* of filter-based coding (§4.4.1), and
//! 3. the post-validation step of ATreeGrep and the frequency-based
//!    baseline.
//!
//! Semantics: `/`-children of one query node map to pairwise-distinct
//! children of the data node (decided with bipartite matching —
//! Kuhn's algorithm over the embed table); `//`-children each need some
//! proper descendant that embeds, with no distinctness constraint (see
//! the crate docs for why this mirrors the index's join phase).

use si_parsetree::{NodeId, ParseTree};

use crate::model::{Axis, QNodeId, Query};

/// Precomputed embedding tables for one `(tree, query)` pair.
///
/// Construction costs `O(|Q| · |T| · b·b')` where `b`, `b'` are branching
/// factors; parse trees keep both tiny (§4.1: average branching 1.52).
pub struct Matcher<'a> {
    tree: &'a ParseTree,
    query: &'a Query,
    /// `embeds[q * n + d]`: query subtree `q` embeds rooted at data node `d`.
    embeds: Vec<bool>,
    /// `desc_ok[q * n + d]`: some proper descendant of `d` embeds `q`.
    desc_ok: Vec<bool>,
}

impl<'a> Matcher<'a> {
    /// Builds the tables bottom-up.
    pub fn new(tree: &'a ParseTree, query: &'a Query) -> Self {
        let n = tree.len();
        let qn = query.len();
        let mut m = Matcher {
            tree,
            query,
            embeds: vec![false; qn * n],
            desc_ok: vec![false; qn * n],
        };
        // Query nodes in reverse pre-order: children before parents.
        for q in (0..qn as u32).rev().map(QNodeId) {
            for d in (0..n as u32).rev().map(NodeId) {
                let ok = m.compute_embed(q, d);
                m.embeds[q.index() * n + d.0 as usize] = ok;
            }
            // desc_ok needs embeds[q] complete; children of d have larger
            // pre ranks, so fill in reverse pre-order again.
            for d in (0..n as u32).rev().map(NodeId) {
                let any = tree.children(d).any(|c| {
                    m.embeds[q.index() * n + c.0 as usize]
                        || m.desc_ok[q.index() * n + c.0 as usize]
                });
                m.desc_ok[q.index() * n + d.0 as usize] = any;
            }
        }
        m
    }

    fn compute_embed(&self, q: QNodeId, d: NodeId) -> bool {
        if self.query.label(q) != self.tree.label(d) {
            return false;
        }
        let n = self.tree.len();
        // `//`-children: each needs some proper descendant.
        for qc in self.query.children_via(q, Axis::Descendant) {
            if !self.desc_ok[qc.index() * n + d.0 as usize] {
                return false;
            }
        }
        // `/`-children: injective assignment to data children.
        let qkids: Vec<QNodeId> = self.query.children_via(q, Axis::Child).collect();
        if qkids.is_empty() {
            return true;
        }
        let dkids: Vec<NodeId> = self.tree.children(d).collect();
        if dkids.len() < qkids.len() {
            return false;
        }
        // Kuhn's bipartite matching: query children on the left.
        let mut matched: Vec<Option<usize>> = vec![None; dkids.len()];
        for (qi, &qc) in qkids.iter().enumerate() {
            let mut seen = vec![false; dkids.len()];
            if !self.try_kuhn(qi, &qkids, &dkids, qc, &mut matched, &mut seen) {
                return false;
            }
        }
        true
    }

    fn try_kuhn(
        &self,
        qi: usize,
        qkids: &[QNodeId],
        dkids: &[NodeId],
        qc: QNodeId,
        matched: &mut Vec<Option<usize>>,
        seen: &mut Vec<bool>,
    ) -> bool {
        let n = self.tree.len();
        for (di, &dc) in dkids.iter().enumerate() {
            if seen[di] || !self.embeds[qc.index() * n + dc.0 as usize] {
                continue;
            }
            seen[di] = true;
            let free = match matched[di] {
                None => true,
                Some(prev_qi) => {
                    self.try_kuhn(prev_qi, qkids, dkids, qkids[prev_qi], matched, seen)
                }
            };
            if free {
                matched[di] = Some(qi);
                return true;
            }
        }
        false
    }

    /// Whether the whole query embeds with its root at `d`.
    pub fn matches_at(&self, d: NodeId) -> bool {
        self.embeds[self.query.root().index() * self.tree.len() + d.0 as usize]
    }

    /// All data nodes where the query root can map (the paper's matches
    /// of the query within this tree).
    pub fn roots(&self) -> Vec<NodeId> {
        self.tree.nodes().filter(|&d| self.matches_at(d)).collect()
    }

    /// Enumerates complete embeddings rooted at `d`, up to `limit`
    /// (0 = unlimited). Each embedding maps query nodes (pre-order) to
    /// data nodes. Used by exactness tests of the interval coding.
    pub fn embeddings_at(&self, d: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        if self.query.label(self.query.root()) != self.tree.label(d) {
            return out;
        }
        let mut assign = vec![NodeId(u32::MAX); self.query.len()];
        assign[0] = d;
        self.backtrack(1, &mut assign, &mut out, limit);
        out
    }

    /// Pre-order backtracking: query node `idx`'s parent is already
    /// assigned (parents precede children in pre-order). Returns false
    /// once `limit` embeddings have been collected.
    fn backtrack(
        &self,
        idx: usize,
        assign: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        limit: usize,
    ) -> bool {
        if idx == self.query.len() {
            out.push(assign.clone());
            return limit == 0 || out.len() < limit;
        }
        let n = self.tree.len();
        let q = QNodeId(idx as u32);
        let p = self.query.parent(q).expect("non-root in pre-order");
        let dp = assign[p.index()];
        let embeds_here = |dd: NodeId| self.embeds[q.index() * n + dd.0 as usize];
        let candidates: Vec<NodeId> = match self.query.axis(q) {
            Axis::Child => {
                // Distinct from already-assigned `/`-siblings.
                let used: Vec<NodeId> = self
                    .query
                    .children_via(p, Axis::Child)
                    .filter(|s| s.0 < q.0)
                    .map(|s| assign[s.index()])
                    .collect();
                self.tree
                    .children(dp)
                    .filter(|dc| embeds_here(*dc) && !used.contains(dc))
                    .collect()
            }
            Axis::Descendant => self
                .tree
                .descendants(dp)
                .skip(1)
                .filter(|dd| embeds_here(*dd))
                .collect(),
        };
        for cand in candidates {
            assign[q.index()] = cand;
            if !self.backtrack(idx + 1, assign, out, limit) {
                return false;
            }
        }
        true
    }
}

/// Whether `query` embeds with its root mapped to `d` in `tree`.
pub fn matches_at(tree: &ParseTree, query: &Query, d: NodeId) -> bool {
    Matcher::new(tree, query).matches_at(d)
}

/// All match roots of `query` in `tree`.
pub fn match_roots(tree: &ParseTree, query: &Query) -> Vec<NodeId> {
    Matcher::new(tree, query).roots()
}

/// Total number of `(tree, root)` matches of `query` across `trees`.
pub fn count_matches<'a, I>(trees: I, query: &Query) -> usize
where
    I: IntoIterator<Item = &'a ParseTree>,
{
    trees
        .into_iter()
        .map(|t| Matcher::new(t, query).roots().len())
        .sum()
}
