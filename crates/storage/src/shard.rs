//! The shard manifest of a tid-range partitioned index directory.
//!
//! A sharded index directory holds
//!
//! ```text
//! <dir>/MANIFEST.si       this manifest
//! <dir>/shard-0000/       a full index (corpus/, index.bt, si.meta)
//! <dir>/shard-0001/
//! ...
//! ```
//!
//! Each shard is a complete self-contained index over a **contiguous
//! range of global tree ids**: shard `i` covers trees
//! `[base_i, base_i + len_i)` of the logical corpus, stored under
//! shard-local ids `0..len_i`. The coding schemes store posting lists in
//! ascending tid order (ChubakR12 §4.4), so tid-range partitioning makes
//! shard-local answers **disjoint**: a global match set is the
//! concatenation of per-shard match sets (local tids offset by `base`)
//! in shard order, with no dedup or merge sort.
//!
//! The manifest is the *only* file incremental ingest rewrites: a new
//! shard directory is built for the new documents and one entry is
//! appended here. The rewrite is atomic (temp file + rename), so a
//! reader either sees the old shard set or the new one, never a torn
//! state.
//!
//! ## On-disk format (`MANIFEST.si`, version 2)
//!
//! ```text
//! magic    8 bytes  "SISHRD1\0"
//! version  varint   2
//! mss      varint   build-time mss, identical across shards
//! coding   1 byte   posting coding id, identical across shards
//! count    varint   number of shards (>= 1)
//! entry*   varint id, varint base, varint len, varint generation
//! ```
//!
//! Version 1 manifests (no per-entry generation varint) still decode;
//! every entry loads with `generation == 0`. The generation is an
//! epoch counter for result caching: `si ingest` stamps the shard it
//! writes with a fresh generation, and a full rebuild into the same
//! directory stamps every shard above the old maximum, so a cache
//! entry keyed by `(shard id, generation)` can never alias a shard's
//! earlier contents.
//!
//! Decoding validates structure: shard ids strictly increase (directory
//! names never collide, even after future shard drops), `len > 0`, and
//! tid coverage is contiguous from 0 (`base_0 == 0`,
//! `base_{i+1} == base_i + len_i`). Any violation, truncation or bad
//! magic is rejected as [`StorageError::Corrupt`].

use std::path::{Path, PathBuf};

use si_parsetree::varint;

use crate::error::{Result, StorageError};

/// File name of the shard manifest inside a sharded index directory.
pub const MANIFEST_FILE: &str = "MANIFEST.si";

const MAGIC: &[u8; 8] = b"SISHRD1\0";
const VERSION: u64 = 2;
/// Oldest manifest version this reader still decodes (entries carry no
/// generation varint and load as generation 0).
const MIN_VERSION: u64 = 1;

/// One shard's manifest record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// Stable shard id; ids strictly increase in manifest order and are
    /// never reused, so shard directory names never collide.
    pub id: u64,
    /// First global tree id this shard covers.
    pub base: u32,
    /// Number of trees in the shard (local tids `0..len`).
    pub len: u32,
    /// Epoch counter bumped every time this shard's contents change
    /// (ingest writes a fresh shard at a fresh generation; a rebuild
    /// stamps above the old maximum). `(id, generation)` uniquely
    /// names one immutable shard state — the invalidation key of the
    /// result cache. Version-1 manifests load with generation 0.
    pub generation: u64,
}

impl ShardEntry {
    /// Directory name of this shard under the index directory.
    pub fn dir_name(&self) -> String {
        format!("shard-{:04}", self.id)
    }

    /// First global tid covered (inclusive).
    pub fn first_tid(&self) -> u32 {
        self.base
    }

    /// Last global tid covered (inclusive).
    pub fn last_tid(&self) -> u32 {
        self.base + (self.len - 1)
    }

    /// Whether `tid` (global) falls inside this shard's range.
    pub fn contains(&self, tid: u32) -> bool {
        tid >= self.first_tid() && tid <= self.last_tid()
    }
}

/// The decoded shard manifest; see the module docs for the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Build-time `mss` shared by every shard.
    pub mss: u64,
    /// Posting-coding id shared by every shard (opaque at this layer;
    /// `si_core` maps it to its `Coding` enum).
    pub coding: u8,
    /// Shard records in tid order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Whether `dir` holds a sharded index (its manifest file exists).
    pub fn exists(dir: &Path) -> bool {
        dir.join(MANIFEST_FILE).is_file()
    }

    /// Path of the manifest file under `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Total trees across all shards.
    pub fn total_trees(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.len)).sum()
    }

    /// The id the next appended shard must use (strictly above all
    /// existing ids).
    pub fn next_id(&self) -> u64 {
        self.shards.last().map_or(0, |s| s.id + 1)
    }

    /// The global base tid the next appended shard must use (contiguous
    /// coverage).
    pub fn next_base(&self) -> u32 {
        self.shards.last().map_or(0, |s| s.base + s.len)
    }

    /// The highest generation across all shards (0 for an empty or
    /// pre-generation manifest); a rebuild stamps its shards above
    /// this.
    pub fn max_generation(&self) -> u64 {
        self.shards.iter().map(|s| s.generation).max().unwrap_or(0)
    }

    /// The shard covering global `tid`, as an index into
    /// [`ShardManifest::shards`].
    pub fn shard_of(&self, tid: u32) -> Option<usize> {
        // Ranges are contiguous and ascending; binary search on base.
        self.shards
            .binary_search_by(|s| {
                if tid < s.first_tid() {
                    std::cmp::Ordering::Greater
                } else if tid > s.last_tid() {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
    }

    /// Serializes the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.shards.len() * 8);
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, VERSION);
        varint::write_u64(&mut out, self.mss);
        out.push(self.coding);
        varint::write_u64(&mut out, self.shards.len() as u64);
        for s in &self.shards {
            varint::write_u64(&mut out, s.id);
            varint::write_u64(&mut out, u64::from(s.base));
            varint::write_u64(&mut out, u64::from(s.len));
            varint::write_u64(&mut out, s.generation);
        }
        out
    }

    /// Deserializes and validates a manifest; any structural violation
    /// is [`StorageError::Corrupt`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let corrupt = |what: &str| StorageError::Corrupt(format!("shard manifest: {what}"));
        let magic = bytes.get(..8).ok_or_else(|| corrupt("truncated magic"))?;
        if magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut r = varint::Reader::new(&bytes[8..]);
        let version = r.u64().ok_or_else(|| corrupt("truncated version"))?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let mss = r.u64().ok_or_else(|| corrupt("truncated mss"))?;
        if !(1..=8).contains(&mss) {
            return Err(corrupt("mss out of range"));
        }
        let coding = r.bytes(1).ok_or_else(|| corrupt("truncated coding"))?[0];
        let count = r.u64().ok_or_else(|| corrupt("truncated shard count"))?;
        if count == 0 {
            return Err(corrupt("zero shards"));
        }
        let mut shards = Vec::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            let id = r.u64().ok_or_else(|| corrupt("truncated shard id"))?;
            let base = r.u64().ok_or_else(|| corrupt("truncated shard base"))?;
            let len = r.u64().ok_or_else(|| corrupt("truncated shard len"))?;
            // Pre-generation manifests carry no per-entry epoch; they
            // load as generation 0 and answer identically.
            let generation = if version >= 2 {
                r.u64()
                    .ok_or_else(|| corrupt("truncated shard generation"))?
            } else {
                0
            };
            let base = u32::try_from(base).map_err(|_| corrupt("shard base overflows u32"))?;
            let len = u32::try_from(len).map_err(|_| corrupt("shard len overflows u32"))?;
            if len == 0 {
                return Err(corrupt("empty shard"));
            }
            base.checked_add(len - 1)
                .ok_or_else(|| corrupt("tid range overflows u32"))?;
            let entry = ShardEntry {
                id,
                base,
                len,
                generation,
            };
            if let Some(prev) = shards.last() {
                let prev: &ShardEntry = prev;
                if entry.id <= prev.id {
                    return Err(corrupt("shard ids not strictly increasing"));
                }
                if entry.base != prev.base + prev.len {
                    return Err(corrupt("tid ranges not contiguous"));
                }
            } else if entry.base != 0 {
                return Err(corrupt("first shard must start at tid 0"));
            }
            shards.push(entry);
        }
        Ok(Self {
            mss,
            coding,
            shards,
        })
    }

    /// Reads and validates `dir`'s manifest.
    pub fn read(dir: &Path) -> Result<Self> {
        let bytes = std::fs::read(Self::path(dir))?;
        Self::decode(&bytes)
    }

    /// Writes the manifest atomically: a temp file in `dir` is renamed
    /// over [`MANIFEST_FILE`], so concurrent readers see either the old
    /// or the new shard set, never a torn write. Validates `self` first
    /// (a manifest that would not decode must never reach disk).
    pub fn write(&self, dir: &Path) -> Result<()> {
        // Round-trip through decode to reuse the full validation.
        Self::decode(&self.encode())?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, Self::path(dir))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> ShardManifest {
        ShardManifest {
            mss: 3,
            coding: 2,
            shards: vec![
                ShardEntry {
                    id: 0,
                    base: 0,
                    len: 100,
                    generation: 1,
                },
                ShardEntry {
                    id: 1,
                    base: 100,
                    len: 50,
                    generation: 1,
                },
                ShardEntry {
                    id: 4,
                    base: 150,
                    len: 7,
                    generation: 3,
                },
            ],
        }
    }

    /// Hand-encodes the version-1 (pre-generation) layout of `m`.
    fn encode_v1(m: &ShardManifest) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, 1);
        varint::write_u64(&mut out, m.mss);
        out.push(m.coding);
        varint::write_u64(&mut out, m.shards.len() as u64);
        for s in &m.shards {
            varint::write_u64(&mut out, s.id);
            varint::write_u64(&mut out, u64::from(s.base));
            varint::write_u64(&mut out, u64::from(s.len));
        }
        out
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = manifest();
        let decoded = ShardManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.total_trees(), 157);
        assert_eq!(decoded.next_id(), 5);
        assert_eq!(decoded.next_base(), 157);
        assert_eq!(decoded.max_generation(), 3);
    }

    /// Satellite: generations round-trip exactly, including large
    /// multi-byte varint values.
    #[test]
    fn generation_round_trips() {
        let mut m = manifest();
        m.shards[0].generation = 0;
        m.shards[1].generation = 300; // two varint bytes
        m.shards[2].generation = u64::MAX >> 1;
        let decoded = ShardManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.max_generation(), u64::MAX >> 1);
    }

    /// Satellite: a pre-generation (version 1) `MANIFEST.si` loads with
    /// every generation zero and is otherwise identical.
    #[test]
    fn version1_manifest_loads_with_zero_generations() {
        let m = manifest();
        let decoded = ShardManifest::decode(&encode_v1(&m)).unwrap();
        assert!(decoded.shards.iter().all(|s| s.generation == 0));
        assert_eq!(decoded.max_generation(), 0);
        let mut expect = m.clone();
        for s in &mut expect.shards {
            s.generation = 0;
        }
        assert_eq!(decoded, expect);
    }

    /// Satellite: a version-2 header whose generation block is cut off
    /// is corruption, not a silent zero.
    #[test]
    fn truncated_generation_block_is_rejected() {
        let good = manifest().encode();
        // The last entry's generation (3) is the final varint byte.
        let cut = &good[..good.len() - 1];
        let err = ShardManifest::decode(cut).unwrap_err();
        assert!(
            err.to_string().contains("generation"),
            "unexpected error: {err}"
        );
        // A v1 body *claiming* version 2 truncates at the first
        // missing generation varint.
        let m = manifest();
        let mut lying = encode_v1(&m);
        lying[8] = 2;
        assert!(ShardManifest::decode(&lying).is_err());
    }

    #[test]
    fn file_round_trip_is_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("si-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(!ShardManifest::exists(&dir));
        let m = manifest();
        m.write(&dir).unwrap();
        assert!(ShardManifest::exists(&dir));
        assert_eq!(ShardManifest::read(&dir).unwrap(), m);
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_lookup_by_tid() {
        let m = manifest();
        assert_eq!(m.shard_of(0), Some(0));
        assert_eq!(m.shard_of(99), Some(0));
        assert_eq!(m.shard_of(100), Some(1));
        assert_eq!(m.shard_of(149), Some(1));
        assert_eq!(m.shard_of(150), Some(2));
        assert_eq!(m.shard_of(156), Some(2));
        assert_eq!(m.shard_of(157), None);
        assert!(m.shards[1].contains(120));
        assert!(!m.shards[1].contains(10));
        assert_eq!(m.shards[2].dir_name(), "shard-0004");
    }

    #[test]
    fn corruption_is_rejected() {
        let good = manifest().encode();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(ShardManifest::decode(&bad).is_err());

        // Truncations at every prefix length must error, not panic.
        for cut in 0..good.len() {
            assert!(
                ShardManifest::decode(&good[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }

        // Unsupported version.
        let mut bad = good.clone();
        bad[8] = 9;
        assert!(ShardManifest::decode(&bad).is_err());

        // Structural violations.
        let mut m = manifest();
        m.shards[1].base = 90; // overlap
        assert!(ShardManifest::decode(&m.encode()).is_err());
        assert!(m.write(std::path::Path::new("/nonexistent")).is_err());
        let mut m = manifest();
        m.shards[1].base = 110; // gap
        assert!(ShardManifest::decode(&m.encode()).is_err());
        let mut m = manifest();
        m.shards[2].id = 1; // id reuse
        assert!(ShardManifest::decode(&m.encode()).is_err());
        let mut m = manifest();
        m.shards[0].base = 5; // does not start at 0
        assert!(ShardManifest::decode(&m.encode()).is_err());
        let mut m = manifest();
        m.shards.clear(); // zero shards
        assert!(ShardManifest::decode(&m.encode()).is_err());
        let mut m = manifest();
        m.shards[2].len = 0; // empty shard
        assert!(ShardManifest::decode(&m.encode()).is_err());
        let mut m = manifest();
        m.mss = 99; // mss out of range
        assert!(ShardManifest::decode(&m.encode()).is_err());
    }
}
