//! The corpus store: data file + offset index + label interner.
//!
//! Mirrors §6.1 of the paper: "we also flattened and sequentially stored
//! parse trees in a separate file, which we call the data file". A
//! [`CorpusStore`] is a directory holding
//!
//! * `trees.dat` — concatenated flattened trees ([`si_parsetree::codec`]),
//! * `trees.idx` — little-endian `u64` byte offsets, one per tree,
//! * `labels.dat` — the serialized [`LabelInterner`].
//!
//! Random access by [`TreeId`] is an offset lookup plus one ranged read;
//! the filtering phase of filter-based coding and the post-validation of
//! the baselines go through this path, so its cost is part of what the
//! paper measures.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use std::sync::Mutex;

use si_parsetree::{codec, LabelInterner, ParseTree, TreeId};

use crate::error::{Result, StorageError};

/// An on-disk corpus of parse trees with random access by tree id.
pub struct CorpusStore {
    dir: PathBuf,
    data: Mutex<File>,
    /// Byte offset of each tree in `trees.dat`; entry `len` is the total
    /// data length, so tree `i` spans `offsets[i]..offsets[i+1]`.
    offsets: Vec<u64>,
    interner: LabelInterner,
}

impl CorpusStore {
    /// Builds a corpus store at `dir` from an iterator of trees and the
    /// interner their labels live in. Any existing store is overwritten.
    pub fn build<'a, I>(dir: &Path, trees: I, interner: &LabelInterner) -> Result<Self>
    where
        I: IntoIterator<Item = &'a ParseTree>,
    {
        std::fs::create_dir_all(dir)?;
        let data_path = dir.join("trees.dat");
        let mut writer = BufWriter::new(File::create(&data_path)?);
        let mut offsets = vec![0u64];
        let mut buf = Vec::with_capacity(4096);
        for tree in trees {
            buf.clear();
            codec::encode_tree(tree, &mut buf);
            writer.write_all(&buf)?;
            let last = *offsets.last().unwrap();
            offsets.push(last + buf.len() as u64);
        }
        writer.flush()?;
        drop(writer);

        let mut idx = BufWriter::new(File::create(dir.join("trees.idx"))?);
        for off in &offsets {
            idx.write_all(&off.to_le_bytes())?;
        }
        idx.flush()?;

        let mut labels = Vec::new();
        interner.encode(&mut labels);
        std::fs::write(dir.join("labels.dat"), labels)?;

        let data = OpenOptions::new().read(true).open(&data_path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            data: Mutex::new(data),
            offsets,
            interner: interner.clone(),
        })
    }

    /// Opens an existing store.
    pub fn open(dir: &Path) -> Result<Self> {
        let data = OpenOptions::new().read(true).open(dir.join("trees.dat"))?;
        let idx_bytes = std::fs::read(dir.join("trees.idx"))?;
        if idx_bytes.len() % 8 != 0 || idx_bytes.is_empty() {
            return Err(StorageError::Corrupt("trees.idx length".into()));
        }
        let offsets: Vec<u64> = idx_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(StorageError::Corrupt("trees.idx not monotone".into()));
        }
        let label_bytes = std::fs::read(dir.join("labels.dat"))?;
        let (interner, _) = LabelInterner::decode(&label_bytes)
            .ok_or_else(|| StorageError::Corrupt("labels.dat".into()))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            data: Mutex::new(data),
            offsets,
            interner,
        })
    }

    /// Number of trees stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the store holds no trees.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label interner shared by all stored trees.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes of the data file (the paper's "data file size").
    pub fn data_bytes(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Fetches and decodes tree `tid`.
    pub fn get(&self, tid: TreeId) -> Result<ParseTree> {
        let i = tid as usize;
        if i + 1 >= self.offsets.len() {
            return Err(StorageError::OutOfRange(format!("tid {tid}")));
        }
        let start = self.offsets[i];
        let len = (self.offsets[i + 1] - start) as usize;
        let mut buf = vec![0u8; len];
        {
            let mut f = self.data.lock().unwrap_or_else(|e| e.into_inner());
            f.seek(SeekFrom::Start(start))?;
            f.read_exact(&mut buf)?;
        }
        let (tree, used) =
            codec::decode_tree(&buf).ok_or_else(|| StorageError::Corrupt(format!("tree {tid}")))?;
        if used != len {
            return Err(StorageError::Corrupt(format!("tree {tid} trailing bytes")));
        }
        Ok(tree)
    }

    /// Iterates all trees in id order (sequential scan of the data file).
    pub fn iter(&self) -> impl Iterator<Item = Result<(TreeId, ParseTree)>> + '_ {
        (0..self.len() as TreeId).map(move |tid| self.get(tid).map(|t| (tid, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::ptb;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("si-corpusstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample_corpus() -> (Vec<ParseTree>, LabelInterner) {
        let mut li = LabelInterner::new();
        let trees = vec![
            ptb::parse("(S (NP (DT the) (NN dog)) (VP (VBZ barks)))", &mut li).unwrap(),
            ptb::parse(
                "(S (NP (NNS agouti)) (VP (VBZ is) (NP (DT a) (NN rodent))))",
                &mut li,
            )
            .unwrap(),
            ptb::parse("(NN)", &mut li).unwrap(),
        ];
        (trees, li)
    }

    #[test]
    fn build_and_get() {
        let dir = tmp("build");
        let (trees, li) = sample_corpus();
        let store = CorpusStore::build(&dir, &trees, &li).unwrap();
        assert_eq!(store.len(), 3);
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(&store.get(i as TreeId).unwrap(), t);
        }
        assert!(store.get(3).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_preserves_everything() {
        let dir = tmp("reopen");
        let (trees, li) = sample_corpus();
        {
            CorpusStore::build(&dir, &trees, &li).unwrap();
        }
        let store = CorpusStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.interner().len(), li.len());
        assert_eq!(store.get(1).unwrap(), trees[1]);
        let all: Vec<_> = store.iter().map(|r| r.unwrap().1).collect();
        assert_eq!(all, trees);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_corpus() {
        let dir = tmp("empty");
        let li = LabelInterner::new();
        let store = CorpusStore::build(&dir, std::iter::empty(), &li).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.data_bytes(), 0);
        assert!(store.get(0).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_index_rejected() {
        let dir = tmp("corrupt");
        let (trees, li) = sample_corpus();
        CorpusStore::build(&dir, &trees, &li).unwrap();
        std::fs::write(dir.join("trees.idx"), [1, 2, 3]).unwrap();
        assert!(CorpusStore::open(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn data_bytes_reports_file_size() {
        let dir = tmp("size");
        let (trees, li) = sample_corpus();
        let store = CorpusStore::build(&dir, &trees, &li).unwrap();
        let meta = std::fs::metadata(dir.join("trees.dat")).unwrap();
        assert_eq!(store.data_bytes(), meta.len());
        std::fs::remove_dir_all(dir).ok();
    }
}
