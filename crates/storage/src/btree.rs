//! A disk-based B+Tree mapping byte keys to byte values.
//!
//! This is the index structure of §6.1: "our subtree index was implemented
//! as a native disk-based B+Tree index". Keys are canonical subtree
//! encodings; values are posting lists. The tree supports
//!
//! * **bulk loading** from a sorted stream (the normal way an SI is built),
//! * **upserts** with leaf/internal splits (incremental additions),
//! * **point lookups**, and
//! * **in-order scans** over all entries (used by the frequency-based
//!   baseline and by statistics collection).
//!
//! Values larger than [`INLINE_MAX`] bytes are stored in overflow-page
//! chains; long posting lists (low-selectivity labels) routinely span many
//! pages. Freed chains are recycled through an intra-file free list.
//!
//! # Page formats (4096-byte pages)
//!
//! ```text
//! meta (page 0): "SIBTREE1" | root u32 | height u32 | key_count u64
//!                | free_head u32 | value_bytes u64
//!                | ["SISTATS1" | stats_head u32 | stats_len u64]   (optional)
//! leaf:     0x01 | n u16 | next_leaf u32 | n * entry
//!   entry:  key_len varint | key | flag u8
//!           flag 0: val_len varint | val
//!           flag 1: total_len varint | first_overflow u32
//! internal: 0x02 | n_children u16 | child0 u32 | (key varint+bytes, child u32)*
//! overflow: 0x03 | next u32 | len u16 | data
//! free:     0x04 | next u32
//! ```
//!
//! # The stats segment
//!
//! A tree may additionally carry a **per-key statistics segment**: one
//! serialized table ([`KeyStats`] per key, sorted by key) stored in an
//! overflow-page chain whose head is recorded in the meta page behind
//! the `"SISTATS1"` marker. The segment is versioned by its own
//! `"SISTATV1"` table header and fully optional — files written before
//! it existed carry zeroes where the marker would be, open cleanly, and
//! report no stats ([`BTree::key_stats`] returns `None`, callers fall
//! back to [`BTree::value_len`]). [`BTree::insert`] invalidates the
//! segment (frees its chain) because a mutated tree would make the
//! recorded tid ranges unsafe for query pruning.

use std::path::Path;
use std::sync::{Arc, Mutex};

use si_parsetree::varint;

use crate::error::{Result, StorageError};
use crate::pager::{PageId, Pager, PAGE_SIZE};

/// Values up to this many bytes are stored inline in leaf pages.
pub const INLINE_MAX: usize = 1024;

/// Maximum supported key length; guarantees any single entry fits a page.
pub const KEY_MAX: usize = 1024;

const NIL: PageId = PageId::MAX;

const MAGIC: &[u8; 8] = b"SIBTREE1";
/// Meta-page marker guarding the stats-segment pointer (offset 36).
/// Pre-stats files hold zeroes here, so the segment reads as absent.
const STATS_MAGIC: &[u8; 8] = b"SISTATS1";
/// Header of the serialized stats table itself (its format version).
const STATS_TABLE_MAGIC_V1: &[u8; 8] = b"SISTATV1";
const STATS_TABLE_MAGIC: &[u8; 8] = b"SISTATV2";

/// Buckets of the per-key tid histogram ([`KeyStats::tid_hist`]).
pub const TID_HIST_BUCKETS: usize = 8;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const TAG_OVERFLOW: u8 = 3;
const TAG_FREE: u8 = 4;

/// Usable payload bytes per overflow page.
const OVERFLOW_CAP: usize = PAGE_SIZE - 7;

#[derive(Debug, Clone, PartialEq, Eq)]
enum ValueRef {
    Inline(Vec<u8>),
    Overflow { first: PageId, len: u64 },
}

impl ValueRef {
    fn encoded_len(&self, _key_len: usize) -> usize {
        match self {
            ValueRef::Inline(v) => 1 + varint::len_u64(v.len() as u64) + v.len(),
            ValueRef::Overflow { len, .. } => 1 + varint::len_u64(*len) + 4,
        }
    }

    fn len(&self) -> u64 {
        match self {
            ValueRef::Inline(v) => v.len() as u64,
            ValueRef::Overflow { len, .. } => *len,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, ValueRef)>,
        next: PageId,
    },
    Internal {
        /// `children.len() == keys.len() + 1`; `keys[i]` separates
        /// `children[i]` (keys < keys[i]) from `children[i+1]` (keys >=).
        children: Vec<PageId>,
        keys: Vec<Vec<u8>>,
    },
}

impl Node {
    fn encode(&self, out: &mut [u8; PAGE_SIZE]) {
        out.fill(0);
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        match self {
            Node::Leaf { entries, next } => {
                buf.push(TAG_LEAF);
                buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                buf.extend_from_slice(&next.to_le_bytes());
                for (key, val) in entries {
                    varint::write_u64(&mut buf, key.len() as u64);
                    buf.extend_from_slice(key);
                    match val {
                        ValueRef::Inline(v) => {
                            buf.push(0);
                            varint::write_u64(&mut buf, v.len() as u64);
                            buf.extend_from_slice(v);
                        }
                        ValueRef::Overflow { first, len } => {
                            buf.push(1);
                            varint::write_u64(&mut buf, *len);
                            buf.extend_from_slice(&first.to_le_bytes());
                        }
                    }
                }
            }
            Node::Internal { children, keys } => {
                debug_assert_eq!(children.len(), keys.len() + 1);
                buf.push(TAG_INTERNAL);
                buf.extend_from_slice(&(children.len() as u16).to_le_bytes());
                buf.extend_from_slice(&children[0].to_le_bytes());
                for (key, &child) in keys.iter().zip(&children[1..]) {
                    varint::write_u64(&mut buf, key.len() as u64);
                    buf.extend_from_slice(key);
                    buf.extend_from_slice(&child.to_le_bytes());
                }
            }
        }
        debug_assert!(buf.len() <= PAGE_SIZE, "node overflows page: {}", buf.len());
        out[..buf.len()].copy_from_slice(&buf);
    }

    fn decode(buf: &[u8; PAGE_SIZE]) -> Result<Node> {
        let corrupt = |what: &str| StorageError::Corrupt(format!("btree node: {what}"));
        match buf[0] {
            TAG_LEAF => {
                let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
                let next = PageId::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]);
                let mut r = varint::Reader::new(&buf[7..]);
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = r.u64().ok_or_else(|| corrupt("key len"))? as usize;
                    let key = r.bytes(klen).ok_or_else(|| corrupt("key bytes"))?.to_vec();
                    let flag = r.bytes(1).ok_or_else(|| corrupt("flag"))?[0];
                    let val = match flag {
                        0 => {
                            let vlen = r.u64().ok_or_else(|| corrupt("val len"))? as usize;
                            ValueRef::Inline(
                                r.bytes(vlen).ok_or_else(|| corrupt("val bytes"))?.to_vec(),
                            )
                        }
                        1 => {
                            let len = r.u64().ok_or_else(|| corrupt("ov len"))?;
                            let b = r.bytes(4).ok_or_else(|| corrupt("ov page"))?;
                            ValueRef::Overflow {
                                first: PageId::from_le_bytes([b[0], b[1], b[2], b[3]]),
                                len,
                            }
                        }
                        _ => return Err(corrupt("bad value flag")),
                    };
                    entries.push((key, val));
                }
                Ok(Node::Leaf { entries, next })
            }
            TAG_INTERNAL => {
                let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
                if n == 0 {
                    return Err(corrupt("internal with no children"));
                }
                let mut r = varint::Reader::new(&buf[3..]);
                let b = r.bytes(4).ok_or_else(|| corrupt("child0"))?;
                let mut children = vec![PageId::from_le_bytes([b[0], b[1], b[2], b[3]])];
                let mut keys = Vec::with_capacity(n - 1);
                for _ in 1..n {
                    let klen = r.u64().ok_or_else(|| corrupt("sep len"))? as usize;
                    keys.push(r.bytes(klen).ok_or_else(|| corrupt("sep bytes"))?.to_vec());
                    let b = r.bytes(4).ok_or_else(|| corrupt("child"))?;
                    children.push(PageId::from_le_bytes([b[0], b[1], b[2], b[3]]));
                }
                Ok(Node::Internal { children, keys })
            }
            t => Err(corrupt(&format!("unexpected page tag {t}"))),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                7 + entries
                    .iter()
                    .map(|(k, v)| {
                        varint::len_u64(k.len() as u64) + k.len() + v.encoded_len(k.len())
                    })
                    .sum::<usize>()
            }
            Node::Internal { children, keys } => {
                3 + 4 * children.len()
                    + keys
                        .iter()
                        .map(|k| varint::len_u64(k.len() as u64) + k.len())
                        .sum::<usize>()
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    root: PageId,
    height: u32,
    key_count: u64,
    free_head: PageId,
    value_bytes: u64,
    /// First page of the stats-segment chain; `NIL` = no segment.
    stats_head: PageId,
    /// Serialized byte length of the stats table.
    stats_len: u64,
}

impl Meta {
    fn encode(&self, out: &mut [u8; PAGE_SIZE]) {
        out.fill(0);
        out[..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&self.root.to_le_bytes());
        out[12..16].copy_from_slice(&self.height.to_le_bytes());
        out[16..24].copy_from_slice(&self.key_count.to_le_bytes());
        out[24..28].copy_from_slice(&self.free_head.to_le_bytes());
        out[28..36].copy_from_slice(&self.value_bytes.to_le_bytes());
        if self.stats_head != NIL {
            out[36..44].copy_from_slice(STATS_MAGIC);
            out[44..48].copy_from_slice(&self.stats_head.to_le_bytes());
            out[48..56].copy_from_slice(&self.stats_len.to_le_bytes());
        }
    }

    fn decode(buf: &[u8; PAGE_SIZE]) -> Result<Meta> {
        if &buf[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad btree magic".into()));
        }
        // Pre-stats files hold zeroes at 36..: no marker, no segment.
        let (stats_head, stats_len) = if &buf[36..44] == STATS_MAGIC {
            (
                PageId::from_le_bytes(buf[44..48].try_into().unwrap()),
                u64::from_le_bytes(buf[48..56].try_into().unwrap()),
            )
        } else {
            (NIL, 0)
        };
        Ok(Meta {
            root: PageId::from_le_bytes(buf[8..12].try_into().unwrap()),
            height: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            key_count: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            free_head: PageId::from_le_bytes(buf[24..28].try_into().unwrap()),
            value_bytes: u64::from_le_bytes(buf[28..36].try_into().unwrap()),
            stats_head,
            stats_len,
        })
    }
}

/// Aggregate statistics of a [`BTree`], used by the index-size experiments
/// (Figure 8) and posting-count reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeStats {
    /// Number of distinct keys.
    pub key_count: u64,
    /// Total bytes across all stored values.
    pub value_bytes: u64,
    /// Height of the tree (0 = the root is a leaf).
    pub height: u32,
    /// Total pages in the backing file, including meta and free pages.
    pub pages: u32,
    /// Total size of the backing file in bytes.
    pub file_bytes: u64,
}

/// Per-key statistics persisted in the stats segment (see the module
/// docs). For a posting-list tree these describe one canonical key's
/// list: how many postings it holds, how many distinct trees they span,
/// and the tid range they cover — the selectivity statistics §7 of the
/// paper anticipates ("statistics about subtrees such as their
/// selectivities").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyStats {
    /// Postings stored under the key (after coding-specific dedup).
    pub postings: u64,
    /// Distinct tree ids the postings span.
    pub distinct_tids: u64,
    /// Smallest tree id with a posting under the key.
    pub first_tid: u32,
    /// Largest tree id with a posting under the key.
    pub last_tid: u32,
    /// Encoded byte length of the stored value (same figure as
    /// [`BTree::value_len`]).
    pub bytes: u64,
    /// `true` when read from a stats segment; `false` when synthesized
    /// by a caller's fallback estimate (pre-stats index files). Only
    /// exact ranges are safe for empty-join pruning.
    pub exact: bool,
    /// Posting counts over [`TID_HIST_BUCKETS`] equal-width tid buckets
    /// spanning `[first_tid, last_tid]` (saturating). All-zero means
    /// "no histogram" — V1 stats segments and synthesized estimates —
    /// and planners fall back to uniform-density costing.
    pub tid_hist: [u32; TID_HIST_BUCKETS],
}

impl KeyStats {
    /// Whether a tid histogram was persisted for this key.
    pub fn has_hist(&self) -> bool {
        self.tid_hist.iter().any(|&c| c != 0)
    }
    /// Mean postings per distinct tree — the clustering statistic
    /// (always ≥ 1 for a non-empty list).
    pub fn mean_postings_per_tid(&self) -> f64 {
        if self.distinct_tids == 0 {
            0.0
        } else {
            self.postings as f64 / self.distinct_tids as f64
        }
    }

    /// Width of the covered tid range, inclusive (`last - first + 1`).
    pub fn tid_span(&self) -> u64 {
        u64::from(self.last_tid) - u64::from(self.first_tid) + 1
    }
}

impl Default for KeyStats {
    fn default() -> Self {
        KeyStats {
            postings: 0,
            distinct_tids: 0,
            first_tid: 0,
            last_tid: 0,
            bytes: 0,
            exact: false,
            tid_hist: [0; TID_HIST_BUCKETS],
        }
    }
}

/// The deserialized stats segment: entries sorted by key for binary
/// search. Loaded lazily on first [`BTree::key_stats`] call and shared
/// behind an `Arc` (the tree is read-mostly).
struct StatsTable {
    entries: Vec<(Vec<u8>, KeyStats)>,
}

impl StatsTable {
    fn parse(bytes: &[u8]) -> Result<Self> {
        let corrupt = |what: &str| StorageError::Corrupt(format!("stats segment: {what}"));
        if bytes.len() < 8 {
            return Err(corrupt("bad table magic"));
        }
        // V2 appends a tid histogram per entry; V1 segments (earlier
        // index builds) parse with all-zero histograms and behave
        // exactly as before.
        let has_hist = match &bytes[..8] {
            m if m == STATS_TABLE_MAGIC => true,
            m if m == STATS_TABLE_MAGIC_V1 => false,
            _ => return Err(corrupt("bad table magic")),
        };
        let mut r = varint::Reader::new(&bytes[8..]);
        let count = r.u64().ok_or_else(|| corrupt("entry count"))? as usize;
        let mut entries = Vec::with_capacity(count);
        let mut prev_key: Option<Vec<u8>> = None;
        for _ in 0..count {
            let klen = r.u64().ok_or_else(|| corrupt("key len"))? as usize;
            let key = r.bytes(klen).ok_or_else(|| corrupt("key bytes"))?.to_vec();
            if prev_key.as_ref().is_some_and(|p| p >= &key) {
                return Err(corrupt("keys not strictly ascending"));
            }
            let postings = r.u64().ok_or_else(|| corrupt("postings"))?;
            let distinct_tids = r.u64().ok_or_else(|| corrupt("distinct tids"))?;
            // Tid fields come from untrusted file bytes: a wrapped
            // last_tid < first_tid would make range pruning silently
            // report wrong-empty results, so reject instead.
            let first_tid = u32::try_from(r.u64().ok_or_else(|| corrupt("first tid"))?)
                .map_err(|_| corrupt("first tid out of range"))?;
            let span = u32::try_from(r.u64().ok_or_else(|| corrupt("tid span"))?)
                .map_err(|_| corrupt("tid span out of range"))?;
            let last_tid = first_tid
                .checked_add(span)
                .ok_or_else(|| corrupt("tid range overflows"))?;
            let bytes_len = r.u64().ok_or_else(|| corrupt("value bytes"))?;
            let mut tid_hist = [0u32; TID_HIST_BUCKETS];
            if has_hist {
                for b in &mut tid_hist {
                    *b = u32::try_from(r.u64().ok_or_else(|| corrupt("tid histogram"))?)
                        .map_err(|_| corrupt("histogram bucket out of range"))?;
                }
            }
            prev_key = Some(key.clone());
            entries.push((
                key,
                KeyStats {
                    postings,
                    distinct_tids,
                    first_tid,
                    last_tid,
                    bytes: bytes_len,
                    exact: true,
                    tid_hist,
                },
            ));
        }
        Ok(Self { entries })
    }

    fn serialize(entries: &[(Vec<u8>, KeyStats)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 * entries.len() + 16);
        out.extend_from_slice(STATS_TABLE_MAGIC);
        varint::write_u64(&mut out, entries.len() as u64);
        for (key, s) in entries {
            varint::write_u64(&mut out, key.len() as u64);
            out.extend_from_slice(key);
            varint::write_u64(&mut out, s.postings);
            varint::write_u64(&mut out, s.distinct_tids);
            varint::write_u64(&mut out, u64::from(s.first_tid));
            varint::write_u64(&mut out, u64::from(s.last_tid - s.first_tid));
            varint::write_u64(&mut out, s.bytes);
            for b in s.tid_hist {
                varint::write_u64(&mut out, u64::from(b));
            }
        }
        out
    }

    fn lookup(&self, key: &[u8]) -> Option<KeyStats> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.entries[i].1)
    }
}

/// A disk-resident B+Tree; see the module docs for the format.
pub struct BTree {
    pager: Pager,
    meta: Meta,
    /// Lazily loaded stats segment (`None` until first use or when the
    /// file has no segment).
    stats_table: Mutex<Option<Arc<StatsTable>>>,
}

impl BTree {
    /// Creates an empty tree at `path` (truncates an existing file).
    pub fn create(path: &Path) -> Result<Self> {
        let pager = Pager::create(path)?;
        let meta_page = pager.allocate()?;
        debug_assert_eq!(meta_page, 0);
        let root = pager.allocate()?;
        let mut tree = Self {
            pager,
            meta: Meta {
                root,
                height: 0,
                key_count: 0,
                free_head: NIL,
                value_bytes: 0,
                stats_head: NIL,
                stats_len: 0,
            },
            stats_table: Mutex::new(None),
        };
        tree.write_node(
            root,
            &Node::Leaf {
                entries: Vec::new(),
                next: NIL,
            },
        )?;
        tree.sync_meta()?;
        Ok(tree)
    }

    /// Opens an existing tree.
    pub fn open(path: &Path) -> Result<Self> {
        let pager = Pager::open(path)?;
        let mut buf = [0u8; PAGE_SIZE];
        pager.read(0, &mut buf)?;
        let meta = Meta::decode(&buf)?;
        Ok(Self {
            pager,
            meta,
            stats_table: Mutex::new(None),
        })
    }

    /// Opens an existing tree read-only, preferring the mmap-backed
    /// pager ([`Pager::open_readonly`]): page reads become borrowed
    /// slices of the mapping with no shard latch, and any mutation
    /// errors instead of silently touching the file. Falls back to the
    /// buffered pager when mapping fails, so this is always safe to
    /// call where [`BTree::open`] would be.
    pub fn open_readonly(path: &Path) -> Result<Self> {
        let pager = Pager::open_readonly(path)?;
        let mut buf = [0u8; PAGE_SIZE];
        pager.read(0, &mut buf)?;
        let meta = Meta::decode(&buf)?;
        Ok(Self {
            pager,
            meta,
            stats_table: Mutex::new(None),
        })
    }

    /// Whether reads are served from a read-only mmap of the file.
    pub fn is_mapped(&self) -> bool {
        self.pager.is_mapped()
    }

    /// Flushes all buffered pages and the meta page.
    pub fn flush(&mut self) -> Result<()> {
        self.sync_meta()?;
        self.pager.flush()
    }

    /// Pager cache hit/miss/eviction counters — the storage half of the
    /// per-query observability surface (`EvalStats`, `si query
    /// --verbose`).
    pub fn pager_counters(&self) -> crate::pager::PagerCounters {
        self.pager.counters()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BTreeStats {
        BTreeStats {
            key_count: self.meta.key_count,
            value_bytes: self.meta.value_bytes,
            height: self.meta.height,
            pages: self.pager.page_count(),
            file_bytes: self.pager.size_bytes(),
        }
    }

    /// Descends to the leaf entry of `key`, returning its [`ValueRef`].
    fn lookup(&self, key: &[u8]) -> Result<Option<ValueRef>> {
        let mut page = self.meta.root;
        for _ in 0..self.meta.height {
            match self.read_node(page)? {
                Node::Internal { children, keys } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf { .. } => {
                    return Err(StorageError::Corrupt("leaf above leaf level".into()))
                }
            }
        }
        match self.read_node(page)? {
            Node::Leaf { mut entries, .. } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Ok(Some(entries.swap_remove(i).1)),
                    Err(_) => Ok(None),
                }
            }
            Node::Internal { .. } => Err(StorageError::Corrupt("internal at leaf level".into())),
        }
    }

    /// Looks up `key`, returning its value if present. Thin wrapper over
    /// [`BTree::value_reader`]; prefer the reader for long values (it
    /// streams overflow chains page-by-page instead of materializing).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.value_reader(key)? {
            Some(reader) => Ok(Some(reader.read_to_vec()?)),
            None => Ok(None),
        }
    }

    /// Opens a streaming cursor over the value of `key`. The cursor pulls
    /// bytes page-at-a-time through the pager (including overflow
    /// chains), so memory stays O(1 page) regardless of value length —
    /// the storage end of the streaming query pipeline.
    pub fn value_reader(&self, key: &[u8]) -> Result<Option<ValueReader<'_>>> {
        Ok(self.lookup(key)?.map(|val| self.reader_for(val)))
    }

    /// The stored value's length in bytes without materializing it —
    /// overflow chains are not followed (their total length lives in the
    /// leaf entry). Used as a cheap selectivity statistic by the query
    /// processor.
    pub fn value_len(&self, key: &[u8]) -> Result<Option<u64>> {
        Ok(self.lookup(key)?.map(|v| v.len()))
    }

    /// Whether `key` is present (no value materialization).
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.lookup(key)?.is_some())
    }

    /// Hints the prefetcher at the first `max_bytes` of `key`'s value,
    /// so a cursor opened over it shortly finds its leading pages warm
    /// — the storage end of plan-driven prefetch (the executor hints
    /// every cover key once the join order is fixed). Costs one tree
    /// descent on the calling thread; inline and absent values return
    /// `None` (nothing to overlap). Dropping the ticket cancels the
    /// remainder.
    pub fn prefetch_value(
        &self,
        key: &[u8],
        max_bytes: u64,
    ) -> Result<Option<crate::prefetch::PrefetchTicket>> {
        match self.lookup(key)? {
            Some(ValueRef::Overflow { first, len }) => {
                let take = len.min(max_bytes).max(1);
                let pages = take.div_ceil(OVERFLOW_CAP as u64).min(u64::from(u32::MAX)) as u32;
                Ok(self.pager.prefetch_chain(first, pages))
            }
            _ => Ok(None),
        }
    }

    /// Whether this file carries a stats segment (see the module docs).
    pub fn has_stats_segment(&self) -> bool {
        self.meta.stats_head != NIL
    }

    /// Per-key statistics from the stats segment. `None` when the file
    /// has no segment (pre-stats format — callers fall back to
    /// [`BTree::value_len`]) or the key has no entry. The segment is
    /// loaded on first use and cached for the tree's lifetime.
    pub fn key_stats(&self, key: &[u8]) -> Result<Option<KeyStats>> {
        if self.meta.stats_head == NIL {
            return Ok(None);
        }
        let table = {
            let mut slot = self.stats_table.lock().unwrap_or_else(|e| e.into_inner());
            match &*slot {
                Some(table) => table.clone(),
                None => {
                    let reader = self.reader_for(ValueRef::Overflow {
                        first: self.meta.stats_head,
                        len: self.meta.stats_len,
                    });
                    let table = Arc::new(StatsTable::parse(&reader.read_to_vec()?)?);
                    *slot = Some(table.clone());
                    table
                }
            }
        };
        Ok(table.lookup(key))
    }

    /// Writes (or replaces) the stats segment from `entries`. Call after
    /// bulk-loading; entries are sorted by key internally. An empty
    /// `entries` still writes a segment so [`BTree::has_stats_segment`]
    /// distinguishes "stats computed, index empty" from "pre-stats
    /// file". The meta page is synced.
    pub fn write_stats_segment(&mut self, entries: Vec<(Vec<u8>, KeyStats)>) -> Result<()> {
        let mut entries = entries;
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        self.drop_stats_segment()?;
        let bytes = StatsTable::serialize(&entries);
        let head = self.write_chain(&bytes)?;
        self.meta.stats_head = head;
        self.meta.stats_len = bytes.len() as u64;
        *self.stats_table.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Arc::new(StatsTable { entries }));
        self.sync_meta()
    }

    /// Frees an existing stats segment and clears the cached table.
    fn drop_stats_segment(&mut self) -> Result<()> {
        if self.meta.stats_head != NIL {
            let head = self.meta.stats_head;
            self.meta.stats_head = NIL;
            self.meta.stats_len = 0;
            self.free_chain(head)?;
        }
        self.stats_table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        Ok(())
    }

    /// Inserts or replaces `key`. Any stats segment is invalidated
    /// (freed): its posting counts and tid ranges no longer describe
    /// the mutated tree, and stale ranges would be unsafe for query
    /// pruning. Rebuild it with [`BTree::write_stats_segment`].
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() > KEY_MAX {
            return Err(StorageError::OutOfRange(format!(
                "key length {} exceeds {KEY_MAX}",
                key.len()
            )));
        }
        self.drop_stats_segment()?;
        // Descend, recording the path.
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.meta.height as usize);
        let mut page = self.meta.root;
        for _ in 0..self.meta.height {
            match self.read_node(page)? {
                Node::Internal { children, keys } => {
                    let i = child_index(&keys, key);
                    path.push((page, i));
                    page = children[i];
                }
                Node::Leaf { .. } => {
                    return Err(StorageError::Corrupt("leaf above leaf level".into()))
                }
            }
        }
        let (mut entries, next) = match self.read_node(page)? {
            Node::Leaf { entries, next } => (entries, next),
            Node::Internal { .. } => {
                return Err(StorageError::Corrupt("internal at leaf level".into()))
            }
        };
        let val_ref = self.store_value(value)?;
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                let old = std::mem::replace(&mut entries[i].1, val_ref);
                self.meta.value_bytes = self.meta.value_bytes - old.len() + value.len() as u64;
                if let ValueRef::Overflow { first, .. } = old {
                    self.free_chain(first)?;
                }
            }
            Err(i) => {
                entries.insert(i, (key.to_vec(), val_ref));
                self.meta.key_count += 1;
                self.meta.value_bytes += value.len() as u64;
            }
        }
        let node = Node::Leaf { entries, next };
        if node.encoded_len() <= PAGE_SIZE {
            self.write_node(page, &node)?;
            return Ok(());
        }
        // Split the leaf and propagate.
        let (left, sep, right_page) = self.split_leaf(page, node)?;
        self.write_node(page, &left)?;
        self.propagate_split(path, sep, right_page)
    }

    /// Bulk-loads a tree from a stream of key/value pairs in strictly
    /// ascending key order. Much faster than repeated [`BTree::insert`]
    /// and produces ~full pages.
    ///
    /// # Errors
    /// Fails if keys are not strictly ascending.
    pub fn bulk_load<I>(path: &Path, pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let pager = Pager::create(path)?;
        let meta_page = pager.allocate()?;
        debug_assert_eq!(meta_page, 0);
        let mut tree = Self {
            pager,
            meta: Meta {
                root: NIL,
                height: 0,
                key_count: 0,
                free_head: NIL,
                value_bytes: 0,
                stats_head: NIL,
                stats_len: 0,
            },
            stats_table: Mutex::new(None),
        };

        // Fill leaves left to right.
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
        let mut cur: Vec<(Vec<u8>, ValueRef)> = Vec::new();
        let mut cur_size = 7usize;
        let mut last_key: Option<Vec<u8>> = None;
        let flush_leaf = |tree: &mut BTree,
                          cur: &mut Vec<(Vec<u8>, ValueRef)>,
                          cur_size: &mut usize,
                          leaves: &mut Vec<(Vec<u8>, PageId)>|
         -> Result<()> {
            if cur.is_empty() {
                return Ok(());
            }
            let page = tree.alloc_page()?;
            if let Some((_, prev)) = leaves.last() {
                tree.set_leaf_next(*prev, page)?;
            }
            let first_key = cur[0].0.clone();
            let node = Node::Leaf {
                entries: std::mem::take(cur),
                next: NIL,
            };
            tree.write_node(page, &node)?;
            leaves.push((first_key, page));
            *cur_size = 7;
            Ok(())
        };

        for (key, value) in pairs {
            if key.len() > KEY_MAX {
                return Err(StorageError::OutOfRange(format!(
                    "key length {} exceeds {KEY_MAX}",
                    key.len()
                )));
            }
            if let Some(prev) = &last_key {
                if prev >= &key {
                    return Err(StorageError::OutOfRange(
                        "bulk_load keys must be strictly ascending".into(),
                    ));
                }
            }
            last_key = Some(key.clone());
            let val_ref = tree.store_value(&value)?;
            let esize =
                varint::len_u64(key.len() as u64) + key.len() + val_ref.encoded_len(key.len());
            if cur_size + esize > PAGE_SIZE {
                flush_leaf(&mut tree, &mut cur, &mut cur_size, &mut leaves)?;
            }
            cur_size += esize;
            tree.meta.key_count += 1;
            tree.meta.value_bytes += value.len() as u64;
            cur.push((key, val_ref));
        }
        flush_leaf(&mut tree, &mut cur, &mut cur_size, &mut leaves)?;

        if leaves.is_empty() {
            let root = tree.alloc_page()?;
            tree.write_node(
                root,
                &Node::Leaf {
                    entries: Vec::new(),
                    next: NIL,
                },
            )?;
            tree.meta.root = root;
            tree.meta.height = 0;
            tree.sync_meta()?;
            return Ok(tree);
        }

        // Build internal levels bottom-up.
        let mut level: Vec<(Vec<u8>, PageId)> = leaves;
        let mut height = 0u32;
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut children: Vec<PageId> = Vec::new();
            let mut keys: Vec<Vec<u8>> = Vec::new();
            let mut first_key: Option<Vec<u8>> = None;
            let mut size = 3usize;
            for (key, page) in level {
                let addition = if children.is_empty() {
                    4
                } else {
                    4 + varint::len_u64(key.len() as u64) + key.len()
                };
                if !children.is_empty() && size + addition > PAGE_SIZE {
                    let node_page = tree.alloc_page()?;
                    tree.write_node(
                        node_page,
                        &Node::Internal {
                            children: std::mem::take(&mut children),
                            keys: std::mem::take(&mut keys),
                        },
                    )?;
                    next_level.push((first_key.take().unwrap(), node_page));
                    size = 3;
                }
                if children.is_empty() {
                    first_key = Some(key);
                    size += 4;
                } else {
                    size += 4 + varint::len_u64(key.len() as u64) + key.len();
                    keys.push(key);
                }
                children.push(page);
            }
            if !children.is_empty() {
                let node_page = tree.alloc_page()?;
                tree.write_node(node_page, &Node::Internal { children, keys })?;
                next_level.push((first_key.take().unwrap(), node_page));
            }
            level = next_level;
        }
        tree.meta.root = level[0].1;
        tree.meta.height = height;
        tree.sync_meta()?;
        Ok(tree)
    }

    /// Iterates all `(key, value)` pairs in key order.
    pub fn iter(&self) -> Result<Iter<'_>> {
        let mut page = self.meta.root;
        for _ in 0..self.meta.height {
            match self.read_node(page)? {
                Node::Internal { children, .. } => page = children[0],
                Node::Leaf { .. } => {
                    return Err(StorageError::Corrupt("leaf above leaf level".into()))
                }
            }
        }
        Ok(Iter {
            tree: self,
            leaf: Some(page),
            entries: Vec::new(),
            pos: 0,
        })
    }

    // ---- internals ----

    fn sync_meta(&mut self) -> Result<()> {
        let mut buf = [0u8; PAGE_SIZE];
        self.meta.encode(&mut buf);
        self.pager.write(0, &buf)
    }

    fn read_node(&self, page: PageId) -> Result<Node> {
        let mut buf = [0u8; PAGE_SIZE];
        self.pager.read(page, &mut buf)?;
        Node::decode(&buf)
    }

    fn write_node(&self, page: PageId, node: &Node) -> Result<()> {
        let mut buf = [0u8; PAGE_SIZE];
        node.encode(&mut buf);
        self.pager.write(page, &buf)
    }

    fn set_leaf_next(&self, page: PageId, next: PageId) -> Result<()> {
        let mut buf = [0u8; PAGE_SIZE];
        self.pager.read(page, &mut buf)?;
        buf[3..7].copy_from_slice(&next.to_le_bytes());
        self.pager.write(page, &buf)
    }

    fn alloc_page(&mut self) -> Result<PageId> {
        if self.meta.free_head != NIL {
            let page = self.meta.free_head;
            let mut buf = [0u8; PAGE_SIZE];
            self.pager.read(page, &mut buf)?;
            if buf[0] != TAG_FREE {
                return Err(StorageError::Corrupt(
                    "free list points at live page".into(),
                ));
            }
            self.meta.free_head = PageId::from_le_bytes(buf[1..5].try_into().unwrap());
            Ok(page)
        } else {
            Ok(self.pager.allocate()?)
        }
    }

    fn free_page(&mut self, page: PageId) -> Result<()> {
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = TAG_FREE;
        buf[1..5].copy_from_slice(&self.meta.free_head.to_le_bytes());
        self.pager.write(page, &buf)?;
        self.meta.free_head = page;
        Ok(())
    }

    fn free_chain(&mut self, mut page: PageId) -> Result<()> {
        while page != NIL {
            let mut buf = [0u8; PAGE_SIZE];
            self.pager.read(page, &mut buf)?;
            if buf[0] != TAG_OVERFLOW {
                return Err(StorageError::Corrupt("overflow chain broken".into()));
            }
            let next = PageId::from_le_bytes(buf[1..5].try_into().unwrap());
            self.free_page(page)?;
            page = next;
        }
        Ok(())
    }

    fn store_value(&mut self, value: &[u8]) -> Result<ValueRef> {
        if value.len() <= INLINE_MAX {
            return Ok(ValueRef::Inline(value.to_vec()));
        }
        Ok(ValueRef::Overflow {
            first: self.write_chain(value)?,
            len: value.len() as u64,
        })
    }

    /// Writes `value` as an overflow-page chain (back-to-front so each
    /// page knows its successor), returning the head page. Shared by
    /// [`BTree::store_value`] and the stats-segment writer.
    fn write_chain(&mut self, value: &[u8]) -> Result<PageId> {
        let mut next = NIL;
        let mut chunks: Vec<&[u8]> = value.chunks(OVERFLOW_CAP).collect();
        while let Some(chunk) = chunks.pop() {
            let page = self.alloc_page()?;
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = TAG_OVERFLOW;
            buf[1..5].copy_from_slice(&next.to_le_bytes());
            buf[5..7].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            buf[7..7 + chunk.len()].copy_from_slice(chunk);
            self.pager.write(page, &buf)?;
            next = page;
        }
        Ok(next)
    }

    /// Builds a [`ValueReader`] over a leaf entry's value — the single
    /// chain-walking implementation behind [`BTree::get`],
    /// [`BTree::value_reader`] and [`Iter`].
    fn reader_for(&self, val: ValueRef) -> ValueReader<'_> {
        let total = val.len();
        let mut lookahead = None;
        let state = match val {
            ValueRef::Inline(v) => ReaderState::Inline(v),
            ValueRef::Overflow { first, .. } => {
                lookahead = self.pager.prefetch_chain(first, CHAIN_LOOKAHEAD_PAGES);
                ReaderState::Chain {
                    next: first,
                    delivered: 0,
                }
            }
        };
        ValueReader {
            tree: self,
            total,
            state,
            lookahead,
            chunks_since_hint: 0,
        }
    }

    fn load_value(&self, val: &ValueRef) -> Result<Vec<u8>> {
        self.reader_for(val.clone()).read_to_vec()
    }

    fn split_leaf(&mut self, _page: PageId, node: Node) -> Result<(Node, Vec<u8>, PageId)> {
        let (entries, next) = match node {
            Node::Leaf { entries, next } => (entries, next),
            Node::Internal { .. } => unreachable!("split_leaf on internal node"),
        };
        // Split by accumulated encoded size at roughly the midpoint.
        let total: usize = entries
            .iter()
            .map(|(k, v)| varint::len_u64(k.len() as u64) + k.len() + v.encoded_len(k.len()))
            .sum();
        let mut acc = 0usize;
        let mut split_at = entries.len() / 2;
        for (i, (k, v)) in entries.iter().enumerate() {
            acc += varint::len_u64(k.len() as u64) + k.len() + v.encoded_len(k.len());
            if acc * 2 >= total {
                split_at = (i + 1).min(entries.len() - 1).max(1);
                break;
            }
        }
        let right_entries = entries[split_at..].to_vec();
        let left_entries = entries[..split_at].to_vec();
        let sep = right_entries[0].0.clone();
        let right_page = self.alloc_page()?;
        self.write_node(
            right_page,
            &Node::Leaf {
                entries: right_entries,
                next,
            },
        )?;
        Ok((
            Node::Leaf {
                entries: left_entries,
                next: right_page,
            },
            sep,
            right_page,
        ))
    }

    fn propagate_split(
        &mut self,
        mut path: Vec<(PageId, usize)>,
        mut sep: Vec<u8>,
        mut new_child: PageId,
    ) -> Result<()> {
        while let Some((page, child_idx)) = path.pop() {
            let (mut children, mut keys) = match self.read_node(page)? {
                Node::Internal { children, keys } => (children, keys),
                Node::Leaf { .. } => {
                    return Err(StorageError::Corrupt("leaf on internal path".into()))
                }
            };
            keys.insert(child_idx, sep);
            children.insert(child_idx + 1, new_child);
            let node = Node::Internal { children, keys };
            if node.encoded_len() <= PAGE_SIZE {
                self.write_node(page, &node)?;
                return Ok(());
            }
            let (children, keys) = match node {
                Node::Internal { children, keys } => (children, keys),
                Node::Leaf { .. } => unreachable!(),
            };
            // Internal split: the middle key moves up.
            let mid = keys.len() / 2;
            let up_key = keys[mid].clone();
            let right_keys = keys[mid + 1..].to_vec();
            let right_children = children[mid + 1..].to_vec();
            let left_keys = keys[..mid].to_vec();
            let left_children = children[..mid + 1].to_vec();
            let right_page = self.alloc_page()?;
            self.write_node(
                right_page,
                &Node::Internal {
                    children: right_children,
                    keys: right_keys,
                },
            )?;
            self.write_node(
                page,
                &Node::Internal {
                    children: left_children,
                    keys: left_keys,
                },
            )?;
            sep = up_key;
            new_child = right_page;
        }
        // Root split.
        let new_root = self.alloc_page()?;
        let old_root = self.meta.root;
        self.write_node(
            new_root,
            &Node::Internal {
                children: vec![old_root, new_child],
                keys: vec![sep],
            },
        )?;
        self.meta.root = new_root;
        self.meta.height += 1;
        Ok(())
    }
}

fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    // First child whose separator is > key; equal separators go right.
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

enum ReaderState {
    /// Inline value not yet emitted.
    Inline(Vec<u8>),
    /// Overflow chain: next page plus bytes handed out so far.
    Chain {
        next: PageId,
        delivered: u64,
    },
    /// A chunk whose page was already descended to (and validated)
    /// during a skip that stopped on it: the payload rides along so the
    /// next `read_chunk` delivers it without a second pager descent —
    /// the skip and the reader share one chain cursor.
    Pending {
        data: Vec<u8>,
        succ: PageId,
        delivered: u64,
    },
    Done,
}

/// Chain pages a reader keeps requested ahead of its own position (the
/// read/decode pipeline depth: ~64 KiB of postings in flight while the
/// consumer decodes).
const CHAIN_LOOKAHEAD_PAGES: u32 = 16;
/// Chunks consumed between lookahead refreshes. Re-hinting from the
/// current position overlaps the tail of the previous window — cheap,
/// because the worker follows already-cached links without I/O.
const CHAIN_REHINT_INTERVAL: u32 = 8;

/// A streaming cursor over one stored value (see
/// [`BTree::value_reader`]). Each [`ValueReader::read_chunk`] call pulls
/// at most one page's payload through the pager, so a consumer that
/// processes chunks incrementally holds O(pages in flight) bytes even
/// for multi-megabyte overflow chains.
///
/// # Lookahead
///
/// A reader over an overflow chain keeps a rolling prefetch window
/// ahead of itself: on open, and every `CHAIN_REHINT_INTERVAL`
/// chunks, it hints the next `CHAIN_LOOKAHEAD_PAGES` links of its own
/// chain to the [prefetcher](crate::prefetch), so chunk N+1 is in
/// flight while chunk N decodes. Dropping the reader drops the ticket,
/// cancelling whatever was not yet loaded.
pub struct ValueReader<'a> {
    tree: &'a BTree,
    total: u64,
    state: ReaderState,
    lookahead: Option<crate::prefetch::PrefetchTicket>,
    chunks_since_hint: u32,
}

impl ValueReader<'_> {
    /// Total value length in bytes (known up front from the leaf entry).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the value has zero bytes.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends the next chunk of the value to `out`, returning the number
    /// of bytes appended. `Ok(0)` signals the end of the value. Chunks
    /// are at most one page's payload (`PAGE_SIZE - 7` bytes) for
    /// overflow values; inline values arrive as a single chunk.
    ///
    /// Overflow payloads are appended straight out of the pager's cache
    /// slot via [`crate::Pager::with_page`] (no intermediate page copy);
    /// the page is pinned only for the duration of the append, so a
    /// reader may stay open across an arbitrarily long scan without
    /// holding any latch between chunks.
    pub fn read_chunk(&mut self, out: &mut Vec<u8>) -> Result<usize> {
        match std::mem::replace(&mut self.state, ReaderState::Done) {
            ReaderState::Done => Ok(0),
            ReaderState::Inline(v) => {
                out.extend_from_slice(&v);
                Ok(v.len())
            }
            ReaderState::Pending {
                data,
                succ,
                delivered,
            } => {
                // Page already descended to (and validated) by a skip
                // that stopped on it: deliver without touching the
                // pager.
                let len = data.len();
                out.extend_from_slice(&data);
                self.state = ReaderState::Chain {
                    next: succ,
                    delivered: delivered + len as u64,
                };
                self.roll_lookahead(succ);
                Ok(len)
            }
            ReaderState::Chain { next, delivered } => {
                if next == NIL {
                    if delivered != self.total {
                        return Err(StorageError::Corrupt(
                            "overflow chain length mismatch".into(),
                        ));
                    }
                    return Ok(0);
                }
                let total = self.total;
                let (succ, len) = self.tree.pager.with_page(next, |buf| {
                    if buf[0] != TAG_OVERFLOW {
                        return Err(StorageError::Corrupt("overflow chain broken".into()));
                    }
                    let succ = PageId::from_le_bytes(buf[1..5].try_into().unwrap());
                    let len = u16::from_le_bytes([buf[5], buf[6]]) as usize;
                    if len > OVERFLOW_CAP {
                        return Err(StorageError::Corrupt("overflow page length".into()));
                    }
                    if len == 0 {
                        // Chains are written from non-empty chunks; an empty
                        // page would read as end-of-value to incremental
                        // consumers and silently truncate the stream.
                        return Err(StorageError::Corrupt("empty overflow page".into()));
                    }
                    if delivered + len as u64 > total {
                        return Err(StorageError::Corrupt(
                            "overflow chain longer than declared".into(),
                        ));
                    }
                    out.extend_from_slice(&buf[7..7 + len]);
                    Ok((succ, len))
                })??;
                self.state = ReaderState::Chain {
                    next: succ,
                    delivered: delivered + len as u64,
                };
                self.roll_lookahead(succ);
                Ok(len)
            }
        }
    }

    /// Keeps the prefetch window rolling ahead of the cursor: every
    /// [`CHAIN_REHINT_INTERVAL`] consumed chunks, re-hint the next
    /// [`CHAIN_LOOKAHEAD_PAGES`] links starting at the cursor's current
    /// chain position. Replacing the ticket drops (cancels) the old
    /// one, which by now has either completed or fallen behind.
    fn roll_lookahead(&mut self, from: PageId) {
        if from == NIL {
            self.lookahead = None;
            return;
        }
        self.chunks_since_hint += 1;
        if self.chunks_since_hint >= CHAIN_REHINT_INTERVAL {
            self.chunks_since_hint = 0;
            if let Some(ticket) = self.tree.pager.prefetch_chain(from, CHAIN_LOOKAHEAD_PAGES) {
                self.lookahead = Some(ticket);
            }
        }
    }

    /// Drops up to `n` upcoming bytes **at chunk granularity** without
    /// copying them out of the page cache, returning how many were
    /// dropped. Only whole chunks (overflow pages, or the entire inline
    /// value) are skipped; the tail the caller still needs arrives via
    /// [`ValueReader::read_chunk`]. This is the disk half of a
    /// posting-list seek: hopping an overflow chain reads each page
    /// header but never materializes the payload.
    pub fn skip_chunk_bytes(&mut self, mut n: u64) -> Result<u64> {
        // A long hop is its own scan of page headers: hint the walk so
        // the worker's batched reads stay ahead of it.
        if n as usize >= 4 * OVERFLOW_CAP {
            if let ReaderState::Chain { next, .. } = self.state {
                let pages = (n / OVERFLOW_CAP as u64 + 2).min(64) as u32;
                if let Some(ticket) = self.tree.pager.prefetch_chain(next, pages) {
                    self.lookahead = Some(ticket);
                }
            }
        }
        let mut skipped = 0u64;
        loop {
            match std::mem::replace(&mut self.state, ReaderState::Done) {
                ReaderState::Done => return Ok(skipped),
                ReaderState::Inline(v) => {
                    if (v.len() as u64) <= n {
                        skipped += v.len() as u64;
                        return Ok(skipped);
                    }
                    self.state = ReaderState::Inline(v);
                    return Ok(skipped);
                }
                ReaderState::Pending {
                    data,
                    succ,
                    delivered,
                } => {
                    if (data.len() as u64) > n {
                        self.state = ReaderState::Pending {
                            data,
                            succ,
                            delivered,
                        };
                        return Ok(skipped);
                    }
                    let len = data.len() as u64;
                    n -= len;
                    skipped += len;
                    self.state = ReaderState::Chain {
                        next: succ,
                        delivered: delivered + len,
                    };
                }
                ReaderState::Chain { next, delivered } => {
                    if next == NIL {
                        self.state = ReaderState::Chain { next, delivered };
                        return Ok(skipped);
                    }
                    let total = self.total;
                    // The boundary page — the first chunk the caller
                    // still needs — carries its payload out of this
                    // single descent (`ReaderState::Pending`), so the
                    // next `read_chunk` does not descend to it again.
                    let (succ, len, keep) = self.tree.pager.with_page(next, |buf| {
                        if buf[0] != TAG_OVERFLOW {
                            return Err(StorageError::Corrupt("overflow chain broken".into()));
                        }
                        let succ = PageId::from_le_bytes(buf[1..5].try_into().unwrap());
                        let len = u16::from_le_bytes([buf[5], buf[6]]) as usize;
                        if len > OVERFLOW_CAP || len == 0 {
                            return Err(StorageError::Corrupt("overflow page length".into()));
                        }
                        if delivered + len as u64 > total {
                            return Err(StorageError::Corrupt(
                                "overflow chain longer than declared".into(),
                            ));
                        }
                        let keep = ((len as u64) > n).then(|| buf[7..7 + len].to_vec());
                        Ok((succ, len, keep))
                    })??;
                    if let Some(data) = keep {
                        self.state = ReaderState::Pending {
                            data,
                            succ,
                            delivered,
                        };
                        return Ok(skipped);
                    }
                    n -= len as u64;
                    skipped += len as u64;
                    self.state = ReaderState::Chain {
                        next: succ,
                        delivered: delivered + len as u64,
                    };
                }
            }
        }
    }

    /// Materializes the remainder of the value (the implementation behind
    /// [`BTree::get`]).
    pub fn read_to_vec(mut self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.total as usize);
        while self.read_chunk(&mut out)? > 0 {}
        if out.len() as u64 != self.total {
            return Err(StorageError::Corrupt(
                "overflow chain length mismatch".into(),
            ));
        }
        Ok(out)
    }
}

/// In-order iterator over all entries of a [`BTree`].
pub struct Iter<'a> {
    tree: &'a BTree,
    leaf: Option<PageId>,
    entries: Vec<(Vec<u8>, ValueRef)>,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.entries.len() {
                let (key, val) = &self.entries[self.pos];
                self.pos += 1;
                let value = match self.tree.load_value(val) {
                    Ok(v) => v,
                    Err(e) => return Some(Err(e)),
                };
                return Some(Ok((key.clone(), value)));
            }
            let page = self.leaf?;
            match self.tree.read_node(page) {
                Ok(Node::Leaf { entries, next }) => {
                    self.entries = entries;
                    self.pos = 0;
                    self.leaf = (next != NIL).then_some(next);
                    if self.entries.is_empty() && self.leaf.is_none() {
                        return None;
                    }
                }
                Ok(Node::Internal { .. }) => {
                    self.leaf = None;
                    return Some(Err(StorageError::Corrupt("internal in leaf chain".into())));
                }
                Err(e) => {
                    self.leaf = None;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-btree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn empty_tree_lookup() {
        let path = tmp("empty");
        let tree = BTree::create(&path).unwrap();
        assert_eq!(tree.get(b"missing").unwrap(), None);
        assert!(!tree.contains(b"missing").unwrap());
        assert_eq!(tree.stats().key_count, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn insert_get_small() {
        let path = tmp("small");
        let mut tree = BTree::create(&path).unwrap();
        tree.insert(b"NP", b"posting-np").unwrap();
        tree.insert(b"VP", b"posting-vp").unwrap();
        tree.insert(b"DT", b"posting-dt").unwrap();
        assert_eq!(tree.get(b"NP").unwrap().unwrap(), b"posting-np");
        assert_eq!(tree.get(b"DT").unwrap().unwrap(), b"posting-dt");
        assert_eq!(tree.get(b"XX").unwrap(), None);
        tree.insert(b"NP", b"replaced").unwrap();
        assert_eq!(tree.get(b"NP").unwrap().unwrap(), b"replaced");
        assert_eq!(tree.stats().key_count, 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn many_inserts_split_leaves_and_internals() {
        let path = tmp("many");
        let mut tree = BTree::create(&path).unwrap();
        let mut model = BTreeMap::new();
        // Insert in a scrambled order to exercise splits at all positions.
        for i in 0u32..3000 {
            let k = format!("key-{:08}", i.wrapping_mul(2654435761) % 100_000);
            let v = format!("value-{i}");
            model.insert(k.clone().into_bytes(), v.clone().into_bytes());
            tree.insert(k.as_bytes(), v.as_bytes()).unwrap();
        }
        assert_eq!(tree.stats().key_count, model.len() as u64);
        assert!(tree.stats().height >= 1, "expected splits");
        for (k, v) in &model {
            assert_eq!(tree.get(k).unwrap().as_ref(), Some(v), "key {:?}", k);
        }
        // Iteration returns entries in sorted order.
        let got: Vec<_> = tree.iter().unwrap().map(|r| r.unwrap()).collect();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overflow_values_round_trip() {
        let path = tmp("overflow");
        let mut tree = BTree::create(&path).unwrap();
        let big: Vec<u8> = (0..50_000u32).flat_map(|i| i.to_le_bytes()).collect();
        tree.insert(b"big", &big).unwrap();
        tree.insert(b"small", b"x").unwrap();
        assert_eq!(tree.get(b"big").unwrap().unwrap(), big);
        assert_eq!(tree.get(b"small").unwrap().unwrap(), b"x");
        // Replace the big value; the old ~49-page chain goes to the free
        // list, so the next big insert recycles pages instead of growing
        // the file.
        tree.insert(b"big", &big[..40_000]).unwrap();
        let pages_before = tree.stats().pages;
        tree.insert(b"big2", &big[..40_000]).unwrap();
        let pages_after = tree.stats().pages;
        assert_eq!(tree.get(b"big").unwrap().unwrap(), &big[..40_000]);
        assert_eq!(tree.get(b"big2").unwrap().unwrap(), &big[..40_000]);
        assert!(
            pages_after <= pages_before + 1,
            "free list should recycle overflow pages: {pages_before} -> {pages_after}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let path_a = tmp("bulk-a");
        let path_b = tmp("bulk-b");
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..2000u32)
            .map(|i| {
                (
                    format!("k{:06}", i).into_bytes(),
                    format!("v{i}").repeat(i as usize % 7 + 1).into_bytes(),
                )
            })
            .collect();
        let bulk = BTree::bulk_load(&path_a, pairs.clone()).unwrap();
        let mut manual = BTree::create(&path_b).unwrap();
        for (k, v) in &pairs {
            manual.insert(k, v).unwrap();
        }
        for (k, v) in &pairs {
            assert_eq!(bulk.get(k).unwrap().as_ref(), Some(v));
            assert_eq!(manual.get(k).unwrap().as_ref(), Some(v));
        }
        let got: Vec<_> = bulk.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, pairs);
        assert_eq!(bulk.stats().key_count, 2000);
        // Bulk-loaded trees pack pages more tightly.
        assert!(bulk.stats().pages <= manual.stats().pages);
        std::fs::remove_file(path_a).ok();
        std::fs::remove_file(path_b).ok();
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let path = tmp("unsorted");
        let pairs = vec![
            (b"b".to_vec(), b"1".to_vec()),
            (b"a".to_vec(), b"2".to_vec()),
        ];
        assert!(BTree::bulk_load(&path, pairs).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bulk_load_empty() {
        let path = tmp("bulk-empty");
        let tree = BTree::bulk_load(&path, Vec::new()).unwrap();
        assert_eq!(tree.get(b"x").unwrap(), None);
        assert_eq!(tree.iter().unwrap().count(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("reopen");
        {
            let mut tree = BTree::create(&path).unwrap();
            for i in 0..500u32 {
                tree.insert(format!("k{i:04}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            tree.flush().unwrap();
        }
        let tree = BTree::open(&path).unwrap();
        assert_eq!(tree.stats().key_count, 500);
        for i in 0..500u32 {
            assert_eq!(
                tree.get(format!("k{i:04}").as_bytes()).unwrap().unwrap(),
                i.to_le_bytes()
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_key_rejected() {
        let path = tmp("bigkey");
        let mut tree = BTree::create(&path).unwrap();
        let key = vec![7u8; KEY_MAX + 1];
        assert!(tree.insert(&key, b"v").is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bulk_load_with_overflow_values() {
        let path = tmp("bulk-ov");
        let big = vec![0xEEu8; 30_000];
        let pairs = vec![
            (b"aaa".to_vec(), big.clone()),
            (b"bbb".to_vec(), b"tiny".to_vec()),
            (b"ccc".to_vec(), big.clone()),
        ];
        let tree = BTree::bulk_load(&path, pairs).unwrap();
        assert_eq!(tree.get(b"aaa").unwrap().unwrap(), big);
        assert_eq!(tree.get(b"bbb").unwrap().unwrap(), b"tiny");
        assert_eq!(tree.get(b"ccc").unwrap().unwrap(), big);
        std::fs::remove_file(path).ok();
    }
}

#[cfg(test)]
mod stats_segment_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-btree-stats");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample_stats(i: u32) -> KeyStats {
        let mut tid_hist = [0u32; TID_HIST_BUCKETS];
        tid_hist[(i as usize) % TID_HIST_BUCKETS] = i + 1;
        KeyStats {
            postings: u64::from(i) * 3 + 1,
            distinct_tids: u64::from(i) + 1,
            first_tid: i,
            last_tid: i * 7 + 10,
            bytes: u64::from(i) * 11 + 2,
            exact: true,
            tid_hist,
        }
    }

    #[test]
    fn segment_round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let n = 2_000u32; // large enough to span several chain pages
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    format!("k{i:06}").into_bytes(),
                    vec![0u8; (i % 13) as usize],
                )
            })
            .collect();
        let entries: Vec<(Vec<u8>, KeyStats)> = (0..n)
            .map(|i| (format!("k{i:06}").into_bytes(), sample_stats(i)))
            .collect();
        {
            let mut tree = BTree::bulk_load(&path, pairs).unwrap();
            assert!(!tree.has_stats_segment());
            assert_eq!(tree.key_stats(b"k000000").unwrap(), None);
            tree.write_stats_segment(entries.clone()).unwrap();
            assert!(tree.has_stats_segment());
            tree.flush().unwrap();
        }
        let tree = BTree::open(&path).unwrap();
        assert!(tree.has_stats_segment());
        for (key, want) in &entries {
            assert_eq!(tree.key_stats(key).unwrap(), Some(*want));
        }
        assert_eq!(tree.key_stats(b"absent").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_stats_file_opens_without_segment() {
        // A file written with no segment (the old format: zeroes where
        // the marker would be) opens cleanly and reports no stats.
        let path = tmp("prestats");
        {
            let mut tree = BTree::create(&path).unwrap();
            tree.insert(b"a", b"1").unwrap();
            tree.flush().unwrap();
        }
        let tree = BTree::open(&path).unwrap();
        assert!(!tree.has_stats_segment());
        assert_eq!(tree.key_stats(b"a").unwrap(), None);
        assert_eq!(tree.value_len(b"a").unwrap(), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_replaces_and_recycles_chain_pages() {
        let path = tmp("rewrite");
        let entries: Vec<(Vec<u8>, KeyStats)> = (0..3_000u32)
            .map(|i| (format!("k{i:06}").into_bytes(), sample_stats(i)))
            .collect();
        let mut tree = BTree::create(&path).unwrap();
        tree.write_stats_segment(entries.clone()).unwrap();
        let pages_before = tree.stats().pages;
        tree.write_stats_segment(entries.clone()).unwrap();
        let pages_after = tree.stats().pages;
        assert!(
            pages_after <= pages_before + 1,
            "old chain recycled: {pages_before} -> {pages_after}"
        );
        assert_eq!(tree.key_stats(b"k000042").unwrap(), Some(sample_stats(42)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn insert_invalidates_segment() {
        // Mutation makes recorded tid ranges unsafe for pruning, so the
        // segment is dropped rather than served stale.
        let path = tmp("invalidate");
        let mut tree = BTree::create(&path).unwrap();
        tree.insert(b"a", b"1").unwrap();
        tree.write_stats_segment(vec![(b"a".to_vec(), sample_stats(0))])
            .unwrap();
        assert!(tree.has_stats_segment());
        tree.insert(b"b", b"2").unwrap();
        assert!(!tree.has_stats_segment());
        assert_eq!(tree.key_stats(b"a").unwrap(), None);
        tree.flush().unwrap();
        let tree = BTree::open(&path).unwrap();
        assert!(!tree.has_stats_segment());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_segment_still_marks_file() {
        let path = tmp("emptyseg");
        let mut tree = BTree::create(&path).unwrap();
        tree.write_stats_segment(Vec::new()).unwrap();
        assert!(tree.has_stats_segment());
        assert_eq!(tree.key_stats(b"x").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_stats_helpers() {
        let s = sample_stats(4); // postings 13, distinct 5, tids 4..=38
        assert!((s.mean_postings_per_tid() - 13.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.tid_span(), 35);
        let full = KeyStats {
            postings: 1,
            distinct_tids: 1,
            first_tid: 0,
            last_tid: u32::MAX,
            bytes: 1,
            ..KeyStats::default()
        };
        assert_eq!(full.tid_span(), 1 << 32);
    }
}

#[cfg(test)]
mod value_reader_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-btree-vreader");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn inline_value_single_chunk() {
        let path = tmp("inline");
        let mut tree = BTree::create(&path).unwrap();
        tree.insert(b"k", b"small value").unwrap();
        let mut r = tree.value_reader(b"k").unwrap().unwrap();
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
        let mut out = Vec::new();
        assert_eq!(r.read_chunk(&mut out).unwrap(), 11);
        assert_eq!(out, b"small value");
        assert_eq!(r.read_chunk(&mut out).unwrap(), 0);
        assert!(tree.value_reader(b"missing").unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflow_value_streams_page_sized_chunks() {
        let path = tmp("chain");
        let mut tree = BTree::create(&path).unwrap();
        let big: Vec<u8> = (0..60_000u32).flat_map(|i| i.to_le_bytes()).collect();
        tree.insert(b"big", &big).unwrap();
        let mut r = tree.value_reader(b"big").unwrap().unwrap();
        assert_eq!(r.len(), big.len() as u64);
        let mut out = Vec::new();
        let mut chunks = 0;
        let mut max_chunk = 0;
        loop {
            let n = r.read_chunk(&mut out).unwrap();
            if n == 0 {
                break;
            }
            chunks += 1;
            max_chunk = max_chunk.max(n);
        }
        assert_eq!(out, big);
        assert!(max_chunk <= OVERFLOW_CAP, "chunks are page-bounded");
        assert_eq!(chunks, big.len().div_ceil(OVERFLOW_CAP));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_to_vec_matches_get() {
        let path = tmp("same");
        let mut tree = BTree::create(&path).unwrap();
        let vals: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"tiny".to_vec(),
            vec![0xAB; INLINE_MAX],
            vec![0xCD; INLINE_MAX + 1],
            vec![0xEF; 3 * OVERFLOW_CAP + 17],
        ];
        for (i, v) in vals.iter().enumerate() {
            tree.insert(format!("k{i}").as_bytes(), v).unwrap();
        }
        for (i, v) in vals.iter().enumerate() {
            let key = format!("k{i}");
            assert_eq!(&tree.get(key.as_bytes()).unwrap().unwrap(), v);
            let r = tree.value_reader(key.as_bytes()).unwrap().unwrap();
            assert_eq!(&r.read_to_vec().unwrap(), v);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_reads_do_not_spike_cache() {
        // A value much larger than the pager cache still streams through:
        // the reader only ever asks for one page at a time.
        let path = tmp("coldcache");
        {
            let mut tree = BTree::create(&path).unwrap();
            let big = vec![7u8; 64 * PAGE_SIZE];
            tree.insert(b"big", &big).unwrap();
            tree.flush().unwrap();
        }
        let tree = BTree::open(&path).unwrap();
        let mut r = tree.value_reader(b"big").unwrap().unwrap();
        let mut total = 0usize;
        let mut chunk = Vec::new();
        loop {
            chunk.clear();
            let n = r.read_chunk(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            // The consumer drops every chunk: peak memory is one page.
            assert!(chunk.len() <= PAGE_SIZE);
            total += n;
        }
        assert_eq!(total, 64 * PAGE_SIZE);
        std::fs::remove_file(&path).ok();
    }

    /// Builds a tree holding one `n_bytes` overflow value under `key`,
    /// then hands it to `check` twice: once opened buffered, once
    /// read-only (mmap when the platform allows). Skip behavior must be
    /// identical on both read paths.
    fn on_both_read_paths(name: &str, n_bytes: usize, check: impl Fn(&BTree, &[u8])) {
        let path = tmp(name);
        let value: Vec<u8> = (0..n_bytes).map(|i| (i % 251) as u8).collect();
        {
            let mut tree = BTree::create(&path).unwrap();
            tree.insert(b"k", &value).unwrap();
            tree.flush().unwrap();
        }
        let buffered = BTree::open(&path).unwrap();
        assert!(!buffered.is_mapped());
        check(&buffered, &value);
        let mapped = BTree::open_readonly(&path).unwrap();
        check(&mapped, &value);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skip_landing_exactly_on_page_boundary() {
        // Skipping exactly k whole chunks must drop exactly k chunks
        // and resume delivery at the first byte of chunk k.
        on_both_read_paths("skip-boundary", 4 * OVERFLOW_CAP, |tree, value| {
            for k in 1..=3u64 {
                let n = k * OVERFLOW_CAP as u64;
                let mut r = tree.value_reader(b"k").unwrap().unwrap();
                assert_eq!(r.skip_chunk_bytes(n).unwrap(), n);
                let mut out = Vec::new();
                assert_eq!(r.read_chunk(&mut out).unwrap(), OVERFLOW_CAP);
                assert_eq!(&out[..], &value[n as usize..n as usize + OVERFLOW_CAP]);
            }
        });
    }

    #[test]
    fn skip_past_end_of_list_stops_at_last_chunk() {
        // Asking for more than remains skips every whole chunk and
        // leaves the reader cleanly at end-of-value.
        on_both_read_paths("skip-past-end", 3 * OVERFLOW_CAP + 17, |tree, value| {
            let mut r = tree.value_reader(b"k").unwrap().unwrap();
            let skipped = r.skip_chunk_bytes(u64::MAX).unwrap();
            assert_eq!(skipped, value.len() as u64);
            let mut out = Vec::new();
            assert_eq!(r.read_chunk(&mut out).unwrap(), 0, "nothing left");
            // A second over-ask on an exhausted reader is a no-op.
            let mut r = tree.value_reader(b"k").unwrap().unwrap();
            assert_eq!(r.skip_chunk_bytes(u64::MAX).unwrap(), value.len() as u64);
            assert_eq!(r.skip_chunk_bytes(u64::MAX).unwrap(), 0);
        });
    }

    #[test]
    fn skip_mid_chunk_keeps_boundary_chunk_whole() {
        // A skip that lands inside a chunk must not skip it: the whole
        // boundary chunk arrives via read_chunk (chunk-granularity
        // contract), and the bytes after it line up.
        on_both_read_paths("skip-mid", 3 * OVERFLOW_CAP, |tree, value| {
            let mut r = tree.value_reader(b"k").unwrap().unwrap();
            let n = OVERFLOW_CAP as u64 + 100;
            assert_eq!(
                r.skip_chunk_bytes(n).unwrap(),
                OVERFLOW_CAP as u64,
                "only the whole first chunk is skippable"
            );
            let mut rest = Vec::new();
            while r.read_chunk(&mut rest).unwrap() > 0 {}
            assert_eq!(&rest[..], &value[OVERFLOW_CAP..]);
        });
    }

    #[test]
    fn skip_on_zero_length_and_inline_values() {
        let path = tmp("skip-zero");
        let mut tree = BTree::create(&path).unwrap();
        tree.insert(b"empty", b"").unwrap();
        tree.insert(b"inline", b"abc").unwrap();
        // Zero-length value: nothing to skip, reader is already done.
        let mut r = tree.value_reader(b"empty").unwrap().unwrap();
        assert!(r.is_empty());
        assert_eq!(r.skip_chunk_bytes(10).unwrap(), 0);
        let mut out = Vec::new();
        assert_eq!(r.read_chunk(&mut out).unwrap(), 0);
        // Inline value: skippable only as a whole.
        let mut r = tree.value_reader(b"inline").unwrap().unwrap();
        assert_eq!(r.skip_chunk_bytes(2).unwrap(), 0, "partial inline skip");
        assert_eq!(r.read_chunk(&mut out).unwrap(), 3);
        let mut r = tree.value_reader(b"inline").unwrap().unwrap();
        assert_eq!(r.skip_chunk_bytes(3).unwrap(), 3, "whole inline skip");
        assert_eq!(r.read_chunk(&mut out).unwrap(), 0);
        // Zero-byte skip request is a no-op from any state.
        let mut r = tree.value_reader(b"inline").unwrap().unwrap();
        assert_eq!(r.skip_chunk_bytes(0).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn boundary_page_descended_once_after_skip() {
        // The chain-cursor contract: a skip that stops on a chunk
        // carries its payload, so the read_chunk that follows performs
        // zero additional pager descents (buffered path; descents show
        // up as hits+misses).
        let path = tmp("skip-once");
        {
            let mut tree = BTree::create(&path).unwrap();
            let value: Vec<u8> = (0..3 * OVERFLOW_CAP).map(|i| (i % 251) as u8).collect();
            tree.insert(b"k", &value).unwrap();
            tree.flush().unwrap();
        }
        let tree = BTree::open(&path).unwrap();
        let mut r = tree.value_reader(b"k").unwrap().unwrap();
        r.skip_chunk_bytes(OVERFLOW_CAP as u64 + 1).unwrap();
        let before = tree.pager_counters();
        let mut out = Vec::new();
        assert_eq!(r.read_chunk(&mut out).unwrap(), OVERFLOW_CAP);
        let d = tree.pager_counters().delta_since(&before);
        assert_eq!(
            d.hits + d.misses,
            0,
            "skip already descended to the boundary page: {d:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod value_len_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-btree-vlen");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn value_len_matches_stored_sizes() {
        let path = tmp("basic");
        let mut tree = BTree::create(&path).unwrap();
        tree.insert(b"small", &[1, 2, 3]).unwrap();
        let big = vec![7u8; 20_000]; // overflow chain
        tree.insert(b"big", &big).unwrap();
        assert_eq!(tree.value_len(b"small").unwrap(), Some(3));
        assert_eq!(tree.value_len(b"big").unwrap(), Some(20_000));
        assert_eq!(tree.value_len(b"missing").unwrap(), None);
        // Overwrite changes the reported length.
        tree.insert(b"big", &big[..5_000]).unwrap();
        assert_eq!(tree.value_len(b"big").unwrap(), Some(5_000));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn value_len_on_bulk_loaded_tree() {
        let path = tmp("bulk");
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..500u32)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    vec![0u8; (i % 97) as usize],
                )
            })
            .collect();
        let tree = BTree::bulk_load(&path, pairs.clone()).unwrap();
        for (k, v) in &pairs {
            assert_eq!(tree.value_len(k).unwrap(), Some(v.len() as u64));
        }
        std::fs::remove_file(&path).ok();
    }
}
