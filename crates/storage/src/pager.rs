//! Page-granular file access with a write-back LRU cache.
//!
//! All index structures sit on 4096-byte pages (the system page size of the
//! paper's test machine). The [`Pager`] owns the backing file, hands out
//! copies of page contents, and buffers writes through an LRU cache whose
//! eviction flushes dirty pages. The cache is deliberately small by
//! default — the paper "did not implement a caching system over the B+Tree
//! and relied on the page buffering of the operating system"; ours exists
//! mainly to batch writes during bulk load, and its size is tunable so
//! experiments can approximate the paper's cold(ish)-cache regime.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

use crate::error::{Result, StorageError};

/// Size of every on-disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within one pager file (page 0 is the first).
pub type PageId = u32;

/// A fixed-size page buffer.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

fn new_page_buf() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap()
}

/// Default number of cached pages (1 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 256;

struct CacheSlot {
    page: PageId,
    buf: PageBuf,
    dirty: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// Intrusive-list LRU over cache slots. Head = most recently used.
struct Lru {
    slots: Vec<CacheSlot>,
    map: HashMap<PageId, usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    fn get(&mut self, page: PageId) -> Option<usize> {
        let i = *self.map.get(&page)?;
        self.touch(i);
        Some(i)
    }

    /// Inserts a slot for `page`, evicting the LRU slot if full.
    /// Returns `(slot_index, evicted)` where `evicted` is the page and
    /// buffer of a dirty evictee that must be written back.
    fn insert(
        &mut self,
        page: PageId,
        buf: PageBuf,
        dirty: bool,
    ) -> (usize, Option<(PageId, PageBuf)>) {
        debug_assert!(!self.map.contains_key(&page));
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(CacheSlot {
                page,
                buf,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.push_front(i);
            self.map.insert(page, i);
            return (i, None);
        }
        // Reuse the tail slot.
        let i = self.tail;
        self.unlink(i);
        let slot = &mut self.slots[i];
        let old_page = slot.page;
        let was_dirty = slot.dirty;
        let old_buf = std::mem::replace(&mut slot.buf, buf);
        slot.page = page;
        slot.dirty = dirty;
        self.map.remove(&old_page);
        self.map.insert(page, i);
        self.push_front(i);
        let evicted = was_dirty.then_some((old_page, old_buf));
        (i, evicted)
    }
}

struct PagerInner {
    file: File,
    page_count: u32,
    lru: Lru,
    /// Number of physical page reads (cache misses); exposed for tests
    /// and experiment instrumentation.
    physical_reads: u64,
    physical_writes: u64,
}

/// A file of fixed-size pages with a write-back LRU cache.
///
/// Thread-safe: all state sits behind a single mutex, which is adequate
/// because the workloads are read-mostly after bulk load and the cache
/// hit path is short.
pub struct Pager {
    inner: Mutex<PagerInner>,
}

impl Pager {
    /// Locks the inner state; a poisoned lock (a panic mid-operation in
    /// another thread) still yields the data, matching the previous
    /// panic-oblivious mutex semantics.
    fn lock(&self) -> MutexGuard<'_, PagerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a new empty pager file at `path`, truncating any existing
    /// file.
    pub fn create(path: &Path) -> Result<Self> {
        Self::create_with_cache(path, DEFAULT_CACHE_PAGES)
    }

    /// [`Pager::create`] with an explicit cache capacity in pages.
    pub fn create_with_cache(path: &Path, cache_pages: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            inner: Mutex::new(PagerInner {
                file,
                page_count: 0,
                lru: Lru::new(cache_pages),
                physical_reads: 0,
                physical_writes: 0,
            }),
        })
    }

    /// Opens an existing pager file.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_cache(path, DEFAULT_CACHE_PAGES)
    }

    /// [`Pager::open`] with an explicit cache capacity in pages.
    pub fn open_with_cache(path: &Path, cache_pages: usize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} not a multiple of page size"
            )));
        }
        let page_count = u32::try_from(len / PAGE_SIZE as u64)
            .map_err(|_| StorageError::Corrupt("too many pages".into()))?;
        Ok(Self {
            inner: Mutex::new(PagerInner {
                file,
                page_count,
                lru: Lru::new(cache_pages),
                physical_reads: 0,
                physical_writes: 0,
            }),
        })
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> u32 {
        self.lock().page_count
    }

    /// `(physical_reads, physical_writes)` performed so far.
    pub fn io_stats(&self) -> (u64, u64) {
        let g = self.lock();
        (g.physical_reads, g.physical_writes)
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&self) -> Result<PageId> {
        let mut g = self.lock();
        let id = g.page_count;
        g.page_count = g
            .page_count
            .checked_add(1)
            .ok_or_else(|| StorageError::OutOfRange("page id overflow".into()))?;
        let (_, evicted) = g.lru.insert(id, new_page_buf(), true);
        if let Some((page, buf)) = evicted {
            write_page_at(&mut g.file, page, &buf)?;
            g.physical_writes += 1;
        }
        Ok(id)
    }

    /// Reads page `id` into `out`.
    pub fn read(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let mut g = self.lock();
        if id >= g.page_count {
            return Err(StorageError::OutOfRange(format!("page {id}")));
        }
        if let Some(slot) = g.lru.get(id) {
            out.copy_from_slice(&g.lru.slots[slot].buf[..]);
            return Ok(());
        }
        let mut buf = new_page_buf();
        read_page_at(&mut g.file, id, &mut buf)?;
        g.physical_reads += 1;
        out.copy_from_slice(&buf[..]);
        let (_, evicted) = g.lru.insert(id, buf, false);
        if let Some((page, ebuf)) = evicted {
            write_page_at(&mut g.file, page, &ebuf)?;
            g.physical_writes += 1;
        }
        Ok(())
    }

    /// Writes `data` as the new contents of page `id`.
    pub fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut g = self.lock();
        if id >= g.page_count {
            return Err(StorageError::OutOfRange(format!("page {id}")));
        }
        if let Some(slot) = g.lru.get(id) {
            g.lru.slots[slot].buf.copy_from_slice(data);
            g.lru.slots[slot].dirty = true;
            return Ok(());
        }
        let mut buf = new_page_buf();
        buf.copy_from_slice(data);
        let (_, evicted) = g.lru.insert(id, buf, true);
        if let Some((page, ebuf)) = evicted {
            write_page_at(&mut g.file, page, &ebuf)?;
            g.physical_writes += 1;
        }
        Ok(())
    }

    /// Flushes all dirty pages (and the file) to disk.
    pub fn flush(&self) -> Result<()> {
        let mut g = self.lock();
        // Ensure the file is long enough even if tail pages were never
        // explicitly flushed.
        let want_len = g.page_count as u64 * PAGE_SIZE as u64;
        if g.file.metadata()?.len() < want_len {
            g.file.set_len(want_len)?;
        }
        let dirty: Vec<usize> = (0..g.lru.slots.len())
            .filter(|&i| g.lru.slots[i].dirty)
            .collect();
        for i in dirty {
            let page = g.lru.slots[i].page;
            // Split borrow: copy out then write.
            let buf = g.lru.slots[i].buf.clone();
            write_page_at(&mut g.file, page, &buf)?;
            g.physical_writes += 1;
            g.lru.slots[i].dirty = false;
        }
        g.file.flush()?;
        Ok(())
    }

    /// Total size of the file in bytes after a flush.
    pub fn size_bytes(&self) -> u64 {
        self.lock().page_count as u64 * PAGE_SIZE as u64
    }
}

fn read_page_at(file: &mut File, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
    file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
    // Pages past the materialized end of file read as zeroes.
    let mut read = 0;
    while read < PAGE_SIZE {
        match file.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    buf[read..].fill(0);
    Ok(())
}

fn write_page_at(file: &mut File, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
    file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
    file.write_all(buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let path = tmp("rw");
        let pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        pager.write(b, &page).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        pager.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        pager.read(a, &mut out).unwrap();
        assert_eq!(out, [0u8; PAGE_SIZE]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("persist");
        {
            let pager = Pager::create(&path).unwrap();
            for i in 0..10u8 {
                let id = pager.allocate().unwrap();
                let mut page = [0u8; PAGE_SIZE];
                page[7] = i;
                pager.write(id, &page).unwrap();
            }
            pager.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 10);
        let mut out = [0u8; PAGE_SIZE];
        for i in 0..10u8 {
            pager.read(i as PageId, &mut out).unwrap();
            assert_eq!(out[7], i);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let path = tmp("evict");
        let pager = Pager::create_with_cache(&path, 2).unwrap();
        let ids: Vec<_> = (0..8).map(|_| pager.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8 + 1;
            pager.write(id, &page).unwrap();
        }
        pager.flush().unwrap();
        let mut out = [0u8; PAGE_SIZE];
        for (i, &id) in ids.iter().enumerate() {
            pager.read(id, &mut out).unwrap();
            assert_eq!(out[0], i as u8 + 1, "page {id}");
        }
        let (reads, writes) = pager.io_stats();
        assert!(writes >= 6, "expected evictions to hit disk, got {writes}");
        assert!(reads >= 6, "expected cache misses, got {reads}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_rejected() {
        let path = tmp("oob");
        let pager = Pager::create(&path).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        assert!(matches!(
            pager.read(0, &mut out),
            Err(StorageError::OutOfRange(_))
        ));
        assert!(matches!(
            pager.write(3, &out),
            Err(StorageError::OutOfRange(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let path = tmp("ragged");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lru_touch_keeps_hot_pages() {
        let path = tmp("lru");
        let pager = Pager::create_with_cache(&path, 2).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        let c = pager.allocate().unwrap();
        pager.flush().unwrap();
        let mut out = [0u8; PAGE_SIZE];
        pager.read(a, &mut out).unwrap();
        pager.read(b, &mut out).unwrap();
        pager.read(a, &mut out).unwrap(); // touch a
        pager.read(c, &mut out).unwrap(); // evicts b, not a
        let (reads_before, _) = pager.io_stats();
        pager.read(a, &mut out).unwrap(); // should be a hit
        let (reads_after, _) = pager.io_stats();
        assert_eq!(reads_before, reads_after);
        std::fs::remove_file(path).ok();
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;

    #[test]
    fn concurrent_readers_and_writers_on_distinct_pages() {
        let path = std::env::temp_dir().join(format!("si-pager-conc-{}", std::process::id()));
        let pager = std::sync::Arc::new(Pager::create_with_cache(&path, 8).unwrap());
        let pages: Vec<PageId> = (0..32).map(|_| pager.allocate().unwrap()).collect();
        std::thread::scope(|scope| {
            for (w, chunk) in pages.chunks(8).enumerate() {
                let pager = pager.clone();
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    for &id in &chunk {
                        let mut page = [0u8; PAGE_SIZE];
                        page[0] = w as u8 + 1;
                        page[1..5].copy_from_slice(&id.to_le_bytes());
                        pager.write(id, &page).unwrap();
                    }
                    for &id in &chunk {
                        let mut out = [0u8; PAGE_SIZE];
                        pager.read(id, &mut out).unwrap();
                        assert_eq!(out[0], w as u8 + 1);
                        assert_eq!(PageId::from_le_bytes(out[1..5].try_into().unwrap()), id);
                    }
                });
            }
        });
        pager.flush().unwrap();
        // Everything is durable and uncorrupted after the scramble.
        for (w, chunk) in pages.chunks(8).enumerate() {
            for &id in chunk {
                let mut out = [0u8; PAGE_SIZE];
                pager.read(id, &mut out).unwrap();
                assert_eq!(out[0], w as u8 + 1, "page {id}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
