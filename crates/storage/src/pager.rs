//! Page-granular file access with a sharded write-back LRU cache.
//!
//! All index structures sit on 4096-byte pages (the system page size of the
//! paper's test machine). The [`Pager`] owns the backing file, hands out
//! copies of page contents, and buffers writes through an LRU cache whose
//! eviction flushes dirty pages. The cache is deliberately small by
//! default — the paper "did not implement a caching system over the B+Tree
//! and relied on the page buffering of the operating system"; ours exists
//! mainly to batch writes during bulk load, and its size is tunable so
//! experiments can approximate the paper's cold(ish)-cache regime.
//!
//! # Concurrency
//!
//! The cache is split into shards, each behind its own mutex, and file
//! I/O uses positioned reads/writes (`pread`/`pwrite`) so no global file
//! lock exists: worker threads streaming *different* posting lists hit
//! different shards and read different file offsets fully in parallel,
//! which is what the multi-query service layer (`si_service`) relies on.
//! Page count and I/O counters are atomics. A small cache (as used by
//! the eviction tests and the cold-cache experiments) collapses to a
//! single shard, preserving exact global-LRU behavior.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::{Result, StorageError};

/// Size of every on-disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within one pager file (page 0 is the first).
pub type PageId = u32;

/// A fixed-size page buffer.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

fn new_page_buf() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap()
}

/// Default number of cached pages (1 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 256;

/// Shards only pay off once the cache is big enough for each shard to
/// hold a meaningful working set; below this capacity the pager uses a
/// single shard (exact global LRU).
const PAGES_PER_SHARD: usize = 64;
const MAX_SHARDS: usize = 16;

struct CacheSlot {
    page: PageId,
    buf: PageBuf,
    dirty: bool,
    /// Loaded by the prefetcher and not yet consumed by a real read.
    /// The first hit clears it (and counts as a *useful* prefetch);
    /// eviction while still set counts as a *wasted* one.
    prefetched: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// Intrusive-list LRU over cache slots. Head = most recently used.
struct Lru {
    slots: Vec<CacheSlot>,
    map: HashMap<PageId, usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    fn get(&mut self, page: PageId) -> Option<usize> {
        let i = *self.map.get(&page)?;
        self.touch(i);
        Some(i)
    }

    /// Slot index of `page` without touching LRU order — used by the
    /// prefetcher, whose probes must not perturb recency.
    fn peek(&self, page: PageId) -> Option<usize> {
        self.map.get(&page).copied()
    }

    /// Inserts a slot for `page`, evicting the LRU slot if full.
    /// Returns `(slot_index, evicted, evicted_prefetched)` where
    /// `evicted` is the page and buffer of a dirty evictee that must be
    /// written back, and `evicted_prefetched` reports whether the
    /// recycled slot still carried an unconsumed prefetch (a *wasted*
    /// prefetch, clean or dirty).
    fn insert(
        &mut self,
        page: PageId,
        buf: PageBuf,
        dirty: bool,
        prefetched: bool,
    ) -> (usize, Option<(PageId, PageBuf)>, bool) {
        debug_assert!(!self.map.contains_key(&page));
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(CacheSlot {
                page,
                buf,
                dirty,
                prefetched,
                prev: NIL,
                next: NIL,
            });
            self.push_front(i);
            self.map.insert(page, i);
            return (i, None, false);
        }
        // Reuse the tail slot.
        let i = self.tail;
        self.unlink(i);
        let slot = &mut self.slots[i];
        let old_page = slot.page;
        let was_dirty = slot.dirty;
        let was_prefetched = slot.prefetched;
        let old_buf = std::mem::replace(&mut slot.buf, buf);
        slot.page = page;
        slot.dirty = dirty;
        slot.prefetched = prefetched;
        self.map.remove(&old_page);
        self.map.insert(page, i);
        self.push_front(i);
        let evicted = was_dirty.then_some((old_page, old_buf));
        (i, evicted, was_prefetched)
    }
}

/// Cache traffic counters — the pager end of the query-service
/// observability surface (`EvalStats` / `si query --verbose`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerCounters {
    /// Read requests served from the cache.
    pub hits: u64,
    /// Read requests that went to disk (== physical reads).
    pub misses: u64,
    /// Cache slots recycled (clean or dirty).
    pub evictions: u64,
}

impl PagerCounters {
    /// Field-wise `self - earlier`, saturating. The idiom for
    /// attributing traffic to a window: snapshot before, snapshot
    /// after, diff.
    pub fn delta_since(&self, earlier: &PagerCounters) -> PagerCounters {
        PagerCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Pager traffic summed over **every pager in the process** since
/// start: the feed for the long-lived metrics registry (`pager.*`
/// dotted names), where per-instance [`Pager::counters`] would vanish
/// with each reopened index. `mmap_reads` counts page reads served
/// straight from a read-only mapping (those also count as `hits`, the
/// OS page cache being the cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessPagerCounters {
    /// Read requests served from a cache (including the mmap path).
    pub hits: u64,
    /// Read requests that went to disk (== physical reads).
    pub misses: u64,
    /// Cache slots recycled with a dirty write-back.
    pub evictions: u64,
    /// Reads served zero-copy from a read-only mmap.
    pub mmap_reads: u64,
    /// Pages loaded (or mmap-touched) ahead of a consumer by the
    /// prefetcher's workers.
    pub prefetch_issued: u64,
    /// Prefetched pages later consumed by a real read (first hit on a
    /// still-flagged slot).
    pub prefetch_useful: u64,
    /// Prefetched pages evicted before any consumer read them.
    pub prefetch_wasted: u64,
    /// Prefetch requests abandoned: ticket dropped, cap-rejected at
    /// submit, or their pager closed before the worker got there.
    pub prefetch_cancelled: u64,
}

static PROCESS_HITS: AtomicU64 = AtomicU64::new(0);
static PROCESS_MISSES: AtomicU64 = AtomicU64::new(0);
static PROCESS_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static PROCESS_MMAP_READS: AtomicU64 = AtomicU64::new(0);
static PROCESS_PREFETCH_ISSUED: AtomicU64 = AtomicU64::new(0);
static PROCESS_PREFETCH_USEFUL: AtomicU64 = AtomicU64::new(0);
static PROCESS_PREFETCH_WASTED: AtomicU64 = AtomicU64::new(0);
static PROCESS_PREFETCH_CANCELLED: AtomicU64 = AtomicU64::new(0);

/// Process-wide pager traffic totals, monotone since process start and
/// aggregated across all pagers (and all threads). Scrape-and-mirror
/// this into a metrics registry; for per-query attribution use
/// [`thread_counters`] instead.
pub fn process_counters() -> ProcessPagerCounters {
    ProcessPagerCounters {
        hits: PROCESS_HITS.load(Ordering::Relaxed),
        misses: PROCESS_MISSES.load(Ordering::Relaxed),
        evictions: PROCESS_EVICTIONS.load(Ordering::Relaxed),
        mmap_reads: PROCESS_MMAP_READS.load(Ordering::Relaxed),
        prefetch_issued: PROCESS_PREFETCH_ISSUED.load(Ordering::Relaxed),
        prefetch_useful: PROCESS_PREFETCH_USEFUL.load(Ordering::Relaxed),
        prefetch_wasted: PROCESS_PREFETCH_WASTED.load(Ordering::Relaxed),
        prefetch_cancelled: PROCESS_PREFETCH_CANCELLED.load(Ordering::Relaxed),
    }
}

/// Bumps the worker-side *issued* total (pages actually loaded or
/// touched ahead of a consumer). Worker threads only.
pub(crate) fn bump_prefetch_issued(n: u64) {
    if n > 0 {
        PROCESS_PREFETCH_ISSUED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Bumps the *cancelled* total (requests abandoned before completion).
pub(crate) fn bump_prefetch_cancelled(n: u64) {
    if n > 0 {
        PROCESS_PREFETCH_CANCELLED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Prefetch activity attributable to the **calling thread**: `hints`
/// counts requests this thread submitted, `useful` counts prefetched
/// pages this thread's reads consumed. Like [`thread_counters`], deltas
/// are exact for single-threaded query execution — hints are submitted
/// on the query thread, and a useful prefetch is observed at the hit,
/// which also happens on the query thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadPrefetchCounters {
    /// Prefetch requests submitted by this thread.
    pub hints: u64,
    /// Prefetched pages consumed by this thread's reads.
    pub useful: u64,
}

impl ThreadPrefetchCounters {
    /// Field-wise `self - earlier`, saturating.
    pub fn delta_since(&self, earlier: &ThreadPrefetchCounters) -> ThreadPrefetchCounters {
        ThreadPrefetchCounters {
            hints: self.hints.saturating_sub(earlier.hints),
            useful: self.useful.saturating_sub(earlier.useful),
        }
    }
}

thread_local! {
    static THREAD_PREFETCH: std::cell::Cell<ThreadPrefetchCounters> =
        const { std::cell::Cell::new(ThreadPrefetchCounters { hints: 0, useful: 0 }) };
}

/// Bumps the calling thread's submitted-hint count (no process-wide
/// mirror: process totals track worker-side pages, not requests).
pub(crate) fn bump_prefetch_hint_local() {
    THREAD_PREFETCH.with(|c| {
        let mut v = c.get();
        v.hints += 1;
        c.set(v);
    });
}

fn bump_prefetch_useful_local() {
    PROCESS_PREFETCH_USEFUL.fetch_add(1, Ordering::Relaxed);
    THREAD_PREFETCH.with(|c| {
        let mut v = c.get();
        v.useful += 1;
        c.set(v);
    });
}

fn bump_prefetch_wasted(n: u64) {
    if n > 0 {
        PROCESS_PREFETCH_WASTED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Snapshot of the calling thread's prefetch attribution counters,
/// monotone since thread start (see [`ThreadPrefetchCounters`]).
pub fn thread_prefetch_counters() -> ThreadPrefetchCounters {
    THREAD_PREFETCH.with(|c| c.get())
}

thread_local! {
    // Per-thread mirror of the pager counters. Every bump site below
    // updates the per-pager atomics, the process-wide statics above,
    // and this cell, so a query that runs entirely on one thread —
    // which is how both the CLI and the service's batch workers
    // execute — can attribute cache traffic to itself exactly, even
    // while other workers hammer the same pager.
    static THREAD_COUNTERS: std::cell::Cell<PagerCounters> =
        const { std::cell::Cell::new(PagerCounters { hits: 0, misses: 0, evictions: 0 }) };
}

#[inline]
fn bump_thread(hits: u64, misses: u64, evictions: u64) {
    if hits > 0 {
        PROCESS_HITS.fetch_add(hits, Ordering::Relaxed);
    }
    if misses > 0 {
        PROCESS_MISSES.fetch_add(misses, Ordering::Relaxed);
    }
    if evictions > 0 {
        PROCESS_EVICTIONS.fetch_add(evictions, Ordering::Relaxed);
    }
    THREAD_COUNTERS.with(|c| {
        let mut v = c.get();
        v.hits += hits;
        v.misses += misses;
        v.evictions += evictions;
        c.set(v);
    });
}

/// Cache hit/miss/eviction totals accumulated by the **calling thread**
/// across every pager, monotone since thread start. Unlike
/// [`Pager::counters`] (a process-wide total shared by all threads),
/// deltas of this snapshot are exact for work the current thread did —
/// the query engine uses it to make per-query `EvalStats` attribution
/// precise under concurrency.
pub fn thread_counters() -> PagerCounters {
    THREAD_COUNTERS.with(|c| c.get())
}

/// The backing file with positioned (seek-free) page I/O, shareable
/// across threads without a lock on Unix.
struct PageFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PageFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    #[cfg(unix)]
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let base = id as u64 * PAGE_SIZE as u64;
        // Pages past the materialized end of file read as zeroes.
        let mut read = 0;
        while read < PAGE_SIZE {
            match self.file.read_at(&mut buf[read..], base + read as u64) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        buf[read..].fill(0);
        Ok(())
    }

    #[cfg(unix)]
    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, id as u64 * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Reads `buf.len() / PAGE_SIZE` consecutive pages starting at
    /// `start` in **one** positioned read — the prefetcher's batching
    /// primitive (one syscall where the consumer would issue one per
    /// page). Bytes past end of file read as zeroes, like `read_page`.
    #[cfg(unix)]
    fn read_span(&self, start: PageId, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        debug_assert_eq!(buf.len() % PAGE_SIZE, 0);
        let base = start as u64 * PAGE_SIZE as u64;
        let mut read = 0;
        while read < buf.len() {
            match self.file.read_at(&mut buf[read..], base + read as u64) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        buf[read..].fill(0);
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_span(&self, start: PageId, buf: &mut [u8]) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        debug_assert_eq!(buf.len() % PAGE_SIZE, 0);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(start as u64 * PAGE_SIZE as u64))?;
        let mut read = 0;
        while read < buf.len() {
            match file.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        buf[read..].fill(0);
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        let mut read = 0;
        while read < PAGE_SIZE {
            match file.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        buf[read..].fill(0);
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        #[cfg(unix)]
        {
            Ok(self.file.metadata()?.len())
        }
        #[cfg(not(unix))]
        {
            let file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            Ok(file.metadata()?.len())
        }
    }

    fn set_len(&self, len: u64) -> Result<()> {
        #[cfg(unix)]
        {
            self.file.set_len(len)?;
        }
        #[cfg(not(unix))]
        {
            let file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.set_len(len)?;
        }
        Ok(())
    }
}

/// A read-only `mmap(2)` of a whole pager file, unmapped on drop.
///
/// Raw-syscall shim rather than a binding crate: the constants are the
/// POSIX values shared by Linux and the BSDs, and std already links
/// libc on Unix so the symbols resolve without any new dependency.
/// Mappings are only taken over *immutable* index files (every build
/// and every shard-ingest writes a fresh directory and never mutates an
/// opened one), so the file cannot shrink under the map.
#[cfg(unix)]
mod mapped {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub struct MappedFile {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ over a file no live code path
    // writes; the pointer is valid for `len` bytes until drop.
    unsafe impl Send for MappedFile {}
    unsafe impl Sync for MappedFile {}

    impl MappedFile {
        /// Maps `len` bytes of `file` read-only; `len` must be non-zero.
        pub fn map(file: &File, len: usize) -> std::io::Result<Self> {
            // SAFETY: null hint, length validated non-zero by the
            // caller, fd lives across the call; failure is checked.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MappedFile {
        fn drop(&mut self) {
            // SAFETY: exactly the region map() returned; errors at
            // unmap leak the region, which is harmless at drop.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Non-Unix stub: mapping always fails, so read-only opens fall back to
/// the buffered pager.
#[cfg(not(unix))]
mod mapped {
    use std::fs::File;

    pub struct MappedFile;

    impl MappedFile {
        pub fn map(_file: &File, _len: usize) -> std::io::Result<Self> {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "mmap unavailable on this platform",
            ))
        }

        pub fn as_slice(&self) -> &[u8] {
            &[]
        }
    }
}

/// The shared state behind a [`Pager`]. Lives in an `Arc` so the
/// prefetcher's worker threads can hold `Weak` references: a request
/// whose pager has been dropped simply fails to upgrade and is counted
/// cancelled — closing an index implicitly cancels its outstanding
/// prefetches without any explicit unregistration.
pub(crate) struct PagerInner {
    file: PageFile,
    map: Option<mapped::MappedFile>,
    page_count: AtomicU32,
    shards: Vec<Mutex<Lru>>,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    cache_hits: AtomicU64,
    evictions: AtomicU64,
}

impl PagerInner {
    fn with_file(file: File, page_count: u32, cache_pages: usize) -> Self {
        let cache_pages = cache_pages.max(1);
        let n_shards = (cache_pages / PAGES_PER_SHARD).clamp(1, MAX_SHARDS);
        let per_shard = cache_pages.div_ceil(n_shards);
        Self {
            file: PageFile::new(file),
            map: None,
            page_count: AtomicU32::new(page_count),
            shards: (0..n_shards)
                .map(|_| Mutex::new(Lru::new(per_shard)))
                .collect(),
            physical_reads: AtomicU64::new(0),
            physical_writes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Locks the shard owning `id`; a poisoned lock (a panic mid-operation
    /// in another thread) still yields the data, matching the previous
    /// panic-oblivious mutex semantics.
    fn shard(&self, id: PageId) -> std::sync::MutexGuard<'_, Lru> {
        let i = id as usize % self.shards.len();
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a new empty pager file at `path`, truncating any existing
    /// file.
    pub fn create(path: &Path) -> Result<Self> {
        Self::create_with_cache(path, DEFAULT_CACHE_PAGES)
    }

    /// [`Pager::create`] with an explicit cache capacity in pages.
    pub fn create_with_cache(path: &Path, cache_pages: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self::with_file(file, 0, cache_pages))
    }

    /// Opens an existing pager file.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_cache(path, DEFAULT_CACHE_PAGES)
    }

    /// [`Pager::open`] with an explicit cache capacity in pages.
    pub fn open_with_cache(path: &Path, cache_pages: usize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} not a multiple of page size"
            )));
        }
        let page_count = u32::try_from(len / PAGE_SIZE as u64)
            .map_err(|_| StorageError::Corrupt("too many pages".into()))?;
        Ok(Self::with_file(file, page_count, cache_pages))
    }

    /// Opens an existing pager file read-only, preferring an mmap of
    /// the whole file (borrowed, latch-free page reads; see the struct
    /// docs). Falls back to the buffered read-write pager on any
    /// mapping failure — empty files, exotic filesystems, non-Unix
    /// platforms — so callers need no error handling of their own.
    pub fn open_readonly(path: &Path) -> Result<Self> {
        match Self::open_mapped(path) {
            Ok(pager) => Ok(pager),
            Err(_) => Self::open(path),
        }
    }

    fn open_mapped(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} not mappable as whole pages"
            )));
        }
        let page_count = u32::try_from(len / PAGE_SIZE as u64)
            .map_err(|_| StorageError::Corrupt("too many pages".into()))?;
        let map_len =
            usize::try_from(len).map_err(|_| StorageError::Corrupt("file too large".into()))?;
        let map = mapped::MappedFile::map(&file, map_len)?;
        let mut pager = Self::with_file(file, page_count, 1);
        pager.map = Some(map);
        Ok(pager)
    }

    /// Whether this pager serves reads from a read-only mmap.
    pub fn is_mapped(&self) -> bool {
        self.map.is_some()
    }

    fn mapped_page(&self, id: PageId) -> Result<Option<&[u8; PAGE_SIZE]>> {
        let Some(map) = &self.map else {
            return Ok(None);
        };
        if id >= self.page_count() {
            return Err(StorageError::OutOfRange(format!("page {id}")));
        }
        let off = id as usize * PAGE_SIZE;
        let page = map.as_slice()[off..off + PAGE_SIZE]
            .try_into()
            .expect("page-sized slice");
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        PROCESS_MMAP_READS.fetch_add(1, Ordering::Relaxed);
        bump_thread(1, 0, 0);
        Ok(Some(page))
    }

    fn read_only_rejected(op: &str) -> StorageError {
        StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            format!("{op} on a read-only (mmap) pager"),
        ))
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    /// `(physical_reads, physical_writes)` performed so far.
    pub fn io_stats(&self) -> (u64, u64) {
        (
            self.physical_reads.load(Ordering::Relaxed),
            self.physical_writes.load(Ordering::Relaxed),
        )
    }

    /// Cache hit/miss/eviction counters since creation.
    pub fn counters(&self) -> PagerCounters {
        PagerCounters {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.physical_reads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Writes back a dirty evictee. Must be called while still holding
    /// the latch of the shard the eviction came from: the evicted page
    /// maps to the same shard (ids are distributed by `id % shards`), so
    /// the latch blocks concurrent readers of that page until its bytes
    /// are durable — releasing first would let them read stale data.
    fn write_back(&self, evicted: Option<(PageId, PageBuf)>) -> Result<()> {
        if let Some((page, buf)) = evicted {
            self.file.write_page(page, &buf)?;
            self.physical_writes.fetch_add(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            bump_thread(0, 0, 1);
        }
        Ok(())
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&self) -> Result<PageId> {
        if self.map.is_some() {
            return Err(Self::read_only_rejected("allocate"));
        }
        // CAS loop instead of fetch_add: a plain increment would wrap
        // MAX → 0 before any corrective store, handing a concurrent
        // allocator a duplicate low page id.
        let mut cur = self.page_count.load(Ordering::Acquire);
        let id = loop {
            if cur == PageId::MAX {
                return Err(StorageError::OutOfRange("page id overflow".into()));
            }
            match self.page_count.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break cur,
                Err(seen) => cur = seen,
            }
        };
        let mut shard = self.shard(id);
        // The id became visible to readers at the CAS, before this latch
        // was taken; a racing read of the (zeroed, past-EOF) page may
        // have inserted a slot already. Reuse it rather than tripping
        // Lru::insert's no-duplicates contract.
        if let Some(slot) = shard.get(id) {
            shard.slots[slot].buf.fill(0);
            shard.slots[slot].dirty = true;
            shard.slots[slot].prefetched = false;
        } else {
            let (_, evicted, was_prefetched) = shard.insert(id, new_page_buf(), true, false);
            bump_prefetch_wasted(was_prefetched as u64);
            self.write_back(evicted)?;
        }
        drop(shard);
        Ok(id)
    }

    /// Reads page `id` into `out`.
    pub fn read(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        if let Some(page) = self.mapped_page(id)? {
            out.copy_from_slice(page);
            return Ok(());
        }
        if id >= self.page_count() {
            return Err(StorageError::OutOfRange(format!("page {id}")));
        }
        let mut shard = self.shard(id);
        if let Some(slot) = shard.get(id) {
            if shard.slots[slot].prefetched {
                shard.slots[slot].prefetched = false;
                bump_prefetch_useful_local();
            }
            out.copy_from_slice(&shard.slots[slot].buf[..]);
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            bump_thread(1, 0, 0);
            return Ok(());
        }
        // Miss: read while holding the shard latch so two threads cannot
        // insert the same page twice; other shards proceed in parallel.
        let mut buf = new_page_buf();
        self.file.read_page(id, &mut buf)?;
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        bump_thread(0, 1, 0);
        out.copy_from_slice(&buf[..]);
        let (_, evicted, was_prefetched) = shard.insert(id, buf, false, false);
        bump_prefetch_wasted(was_prefetched as u64);
        self.write_back(evicted)
    }

    /// Runs `f` over page `id`'s bytes **in place** in the cache slot —
    /// the zero-copy read path of the posting pipeline. Where
    /// [`Pager::read`] copies the whole page into a caller buffer,
    /// `with_page` lends the cached buffer directly, so consumers that
    /// extract only part of a page (a B+Tree overflow chunk, say) pay
    /// one copy instead of two.
    ///
    /// # Pinning contract
    ///
    /// The page is pinned by the owning shard latch for exactly the
    /// duration of `f`; the borrow cannot escape the closure, and no
    /// latch is held between calls — which is what lets long-lived
    /// readers ([`crate::btree::ValueReader`], and the posting feeds
    /// built over it) stay open across an entire scan without blocking
    /// writers or other shards. `f` must not call back into this pager
    /// (the shard latch is not reentrant).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        if let Some(page) = self.mapped_page(id)? {
            return Ok(f(page));
        }
        if id >= self.page_count() {
            return Err(StorageError::OutOfRange(format!("page {id}")));
        }
        let mut shard = self.shard(id);
        if let Some(slot) = shard.get(id) {
            if shard.slots[slot].prefetched {
                shard.slots[slot].prefetched = false;
                bump_prefetch_useful_local();
            }
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            bump_thread(1, 0, 0);
            return Ok(f(&shard.slots[slot].buf));
        }
        // Miss: read while holding the shard latch so two threads cannot
        // insert the same page twice; other shards proceed in parallel.
        let mut buf = new_page_buf();
        self.file.read_page(id, &mut buf)?;
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        bump_thread(0, 1, 0);
        let (slot, evicted, was_prefetched) = shard.insert(id, buf, false, false);
        bump_prefetch_wasted(was_prefetched as u64);
        let out = f(&shard.slots[slot].buf);
        self.write_back(evicted)?;
        Ok(out)
    }

    /// Writes `data` as the new contents of page `id`.
    pub fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        if self.map.is_some() {
            return Err(Self::read_only_rejected("write"));
        }
        if id >= self.page_count() {
            return Err(StorageError::OutOfRange(format!("page {id}")));
        }
        let mut shard = self.shard(id);
        if let Some(slot) = shard.get(id) {
            shard.slots[slot].buf.copy_from_slice(data);
            shard.slots[slot].dirty = true;
            shard.slots[slot].prefetched = false;
            return Ok(());
        }
        let mut buf = new_page_buf();
        buf.copy_from_slice(data);
        let (_, evicted, was_prefetched) = shard.insert(id, buf, true, false);
        bump_prefetch_wasted(was_prefetched as u64);
        self.write_back(evicted)
    }

    /// Flushes all dirty pages (and the file) to disk. A no-op on a
    /// read-only mapped pager (nothing can be dirty).
    pub fn flush(&self) -> Result<()> {
        if self.map.is_some() {
            return Ok(());
        }
        // Ensure the file is long enough even if tail pages were never
        // explicitly flushed.
        let want_len = self.page_count() as u64 * PAGE_SIZE as u64;
        if self.file.len()? < want_len {
            self.file.set_len(want_len)?;
        }
        for shard in &self.shards {
            let mut g = shard.lock().unwrap_or_else(|e| e.into_inner());
            let dirty: Vec<usize> = (0..g.slots.len()).filter(|&i| g.slots[i].dirty).collect();
            for i in dirty {
                let page = g.slots[i].page;
                // Split borrow: copy out then write.
                let buf = g.slots[i].buf.clone();
                self.file.write_page(page, &buf)?;
                self.physical_writes.fetch_add(1, Ordering::Relaxed);
                g.slots[i].dirty = false;
            }
        }
        Ok(())
    }

    /// Total size of the file in bytes after a flush.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() as u64 * PAGE_SIZE as u64
    }

    // ---- prefetch-worker surface (no hit/miss accounting) ----
    //
    // These run on prefetcher worker threads. They deliberately bypass
    // the hit/miss/eviction counters: a speculative load is not a cache
    // miss the consumer suffered, and a probe must not perturb LRU
    // recency. Their traffic is accounted under `prefetch.*` instead.

    /// First 8 bytes of `id`'s cached copy, if resident — enough for a
    /// chain walker to follow an overflow link without I/O. Does not
    /// touch LRU order or any counter.
    pub(crate) fn cached_page_header(&self, id: PageId) -> Option<[u8; 8]> {
        let shard = self.shard(id);
        let slot = shard.peek(id)?;
        Some(
            shard.slots[slot].buf[..8]
                .try_into()
                .expect("8-byte header"),
        )
    }

    /// Reads consecutive pages starting at `start` in one positioned
    /// read, without counting a miss (see `PageFile::read_span`).
    pub(crate) fn read_span_raw(&self, start: PageId, buf: &mut [u8]) -> Result<()> {
        self.file.read_span(start, buf)
    }

    /// Inserts a speculatively read page into the cache, flagged
    /// `prefetched`. Returns `false` (and drops the bytes) if the page
    /// is already resident — a concurrent consumer beat the worker to
    /// it, which must not clobber a dirtied copy or reset its flag.
    pub(crate) fn insert_prefetched(&self, id: PageId, page: &[u8; PAGE_SIZE]) -> Result<bool> {
        if id >= self.page_count() {
            return Ok(false);
        }
        let mut shard = self.shard(id);
        if shard.peek(id).is_some() {
            return Ok(false);
        }
        let mut buf = new_page_buf();
        buf.copy_from_slice(page);
        let (_, evicted, was_prefetched) = shard.insert(id, buf, false, true);
        bump_prefetch_wasted(was_prefetched as u64);
        self.write_back(evicted)?;
        Ok(true)
    }

    /// Borrow of page `id` in the read-only mapping, if this pager is
    /// mapped and the id is in range. No counters (unlike the consumer
    /// path through `mapped_page`): used for madvise-style touch reads.
    pub(crate) fn peek_mapped(&self, id: PageId) -> Option<&[u8]> {
        let map = self.map.as_ref()?;
        if id >= self.page_count() {
            return None;
        }
        let off = id as usize * PAGE_SIZE;
        Some(&map.as_slice()[off..off + PAGE_SIZE])
    }
}

/// A file of fixed-size pages with a sharded write-back LRU cache.
///
/// Thread-safe: each cache shard sits behind its own mutex and file I/O
/// is positioned, so concurrent readers of different pages proceed in
/// parallel (see the module docs). The state lives behind an `Arc` so
/// the [prefetcher](crate::prefetch) can reference it weakly from its
/// worker pool; the handle itself stays single-owner.
///
/// # Read-only mmap mode
///
/// [`Pager::open_readonly`] maps the whole file instead of buffering
/// pages: every read is served as a borrowed slice of the mapping with
/// **no shard latch and no copy**, mutations are rejected, and flush is
/// a no-op. Reads under the map count as cache hits (the OS page cache
/// is the cache). Any mapping failure falls back to the buffered pager
/// transparently.
pub struct Pager {
    inner: std::sync::Arc<PagerInner>,
}

impl Pager {
    fn from_inner(inner: PagerInner) -> Self {
        Self {
            inner: std::sync::Arc::new(inner),
        }
    }

    /// Creates a new empty pager file at `path`, truncating any existing
    /// file.
    pub fn create(path: &Path) -> Result<Self> {
        Ok(Self::from_inner(PagerInner::create(path)?))
    }

    /// [`Pager::create`] with an explicit cache capacity in pages.
    pub fn create_with_cache(path: &Path, cache_pages: usize) -> Result<Self> {
        Ok(Self::from_inner(PagerInner::create_with_cache(
            path,
            cache_pages,
        )?))
    }

    /// Opens an existing pager file.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(Self::from_inner(PagerInner::open(path)?))
    }

    /// [`Pager::open`] with an explicit cache capacity in pages.
    pub fn open_with_cache(path: &Path, cache_pages: usize) -> Result<Self> {
        Ok(Self::from_inner(PagerInner::open_with_cache(
            path,
            cache_pages,
        )?))
    }

    /// Opens an existing pager file read-only, preferring an mmap of
    /// the whole file (see the struct docs). Falls back to the buffered
    /// read-write pager on any mapping failure.
    pub fn open_readonly(path: &Path) -> Result<Self> {
        Ok(Self::from_inner(PagerInner::open_readonly(path)?))
    }

    /// Whether this pager serves reads from a read-only mmap.
    pub fn is_mapped(&self) -> bool {
        self.inner.is_mapped()
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    /// `(physical_reads, physical_writes)` performed so far.
    pub fn io_stats(&self) -> (u64, u64) {
        self.inner.io_stats()
    }

    /// Cache hit/miss/eviction counters since creation.
    pub fn counters(&self) -> PagerCounters {
        self.inner.counters()
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }

    /// Reads page `id` into `out`.
    pub fn read(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.inner.read(id, out)
    }

    /// Runs `f` over page `id`'s bytes **in place** in the cache slot —
    /// the zero-copy read path of the posting pipeline; see
    /// `PagerInner::with_page` for the pinning contract (the page is
    /// pinned by the shard latch exactly for the duration of `f`, and
    /// `f` must not reenter the pager).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        self.inner.with_page(id, f)
    }

    /// Writes `data` as the new contents of page `id`.
    pub fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.inner.write(id, data)
    }

    /// Flushes all dirty pages (and the file) to disk.
    pub fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    /// Total size of the file in bytes after a flush.
    pub fn size_bytes(&self) -> u64 {
        self.inner.size_bytes()
    }

    /// Asks the prefetcher to walk the overflow chain headed at `first`
    /// and pull up to `max_pages` of it into the page cache (buffered
    /// mode) or touch it into the OS page cache (mmap mode), ahead of a
    /// consumer about to stream it. Returns `None` when prefetching is
    /// disabled, the queue cap is reached, or there is nothing to do.
    /// Dropping the ticket cancels whatever has not happened yet.
    ///
    /// Safe only against pages no writer mutates concurrently — the
    /// B+Tree guarantees this (readers hold `&BTree`, mutation requires
    /// `&mut`), and speculative loads of stale bytes are shed at insert
    /// time if a consumer got there first.
    pub fn prefetch_chain(&self, first: PageId, max_pages: u32) -> Option<PrefetchTicket> {
        if self.hint_window_resident(first, max_pages, true) {
            return None;
        }
        crate::prefetch::submit(
            std::sync::Arc::downgrade(&self.inner),
            first,
            max_pages,
            crate::prefetch::RequestKind::Chain,
        )
    }

    /// Like [`Pager::prefetch_chain`] but for a known-contiguous run of
    /// `pages` pages starting at `start` (no link-following).
    pub fn prefetch_run(&self, start: PageId, pages: u32) -> Option<PrefetchTicket> {
        if self.hint_window_resident(start, pages, false) {
            return None;
        }
        crate::prefetch::submit(
            std::sync::Arc::downgrade(&self.inner),
            start,
            pages,
            crate::prefetch::RequestKind::Run,
        )
    }

    /// True when the hinted window is (heuristically) already
    /// cache-resident, so submitting would only wake a worker to walk
    /// resident headers — and contend on shard latches with the very
    /// consumer the hint is meant to help. That wakeup-and-walk is
    /// pure overhead on fully warm scans, so the hint is suppressed.
    ///
    /// The probe checks the two *ends* of the window (chains descend,
    /// so a chain window's far end is `start - (pages-1)`); probing
    /// only the start page would break cold rolling re-hints, whose
    /// start is exactly the page the previous hint just loaded. Both
    /// probes are counter- and LRU-neutral. A wrong guess fails safe:
    /// a window that straddles an eviction gap submits as before, and
    /// the worker's walk over its resident prefix is cheap. Mapped
    /// pagers always submit — OS page-cache residency is not cheaply
    /// observable, and their touch reads have no latches to contend.
    fn hint_window_resident(&self, start: PageId, pages: u32, descending: bool) -> bool {
        if pages == 0 || self.inner.is_mapped() {
            return false;
        }
        let span = pages - 1;
        let far = if descending {
            start.saturating_sub(span)
        } else {
            start.saturating_add(span)
        };
        self.inner.cached_page_header(start).is_some()
            && (far == start || self.inner.cached_page_header(far).is_some())
    }
}

pub use crate::prefetch::PrefetchTicket;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let path = tmp("rw");
        let pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        pager.write(b, &page).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        pager.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        pager.read(a, &mut out).unwrap();
        assert_eq!(out, [0u8; PAGE_SIZE]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("persist");
        {
            let pager = Pager::create(&path).unwrap();
            for i in 0..10u8 {
                let id = pager.allocate().unwrap();
                let mut page = [0u8; PAGE_SIZE];
                page[7] = i;
                pager.write(id, &page).unwrap();
            }
            pager.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 10);
        let mut out = [0u8; PAGE_SIZE];
        for i in 0..10u8 {
            pager.read(i as PageId, &mut out).unwrap();
            assert_eq!(out[7], i);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let path = tmp("evict");
        let pager = Pager::create_with_cache(&path, 2).unwrap();
        let ids: Vec<_> = (0..8).map(|_| pager.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8 + 1;
            pager.write(id, &page).unwrap();
        }
        pager.flush().unwrap();
        let mut out = [0u8; PAGE_SIZE];
        for (i, &id) in ids.iter().enumerate() {
            pager.read(id, &mut out).unwrap();
            assert_eq!(out[0], i as u8 + 1, "page {id}");
        }
        let (reads, writes) = pager.io_stats();
        assert!(writes >= 6, "expected evictions to hit disk, got {writes}");
        assert!(reads >= 6, "expected cache misses, got {reads}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn thread_counters_attribute_exactly_under_concurrency() {
        // Two threads hammer the same pager; each thread's TLS delta
        // must equal exactly its own access count, while the shared
        // counters see the blended total.
        let path = tmp("tls");
        let pager = std::sync::Arc::new(Pager::create(&path).unwrap());
        let id = pager.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 1;
        pager.write(id, &page).unwrap();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let spawn = |reps: u64| {
            let pager = std::sync::Arc::clone(&pager);
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let before = thread_counters();
                barrier.wait();
                let mut out = [0u8; PAGE_SIZE];
                for _ in 0..reps {
                    pager.read(id, &mut out).unwrap();
                }
                let d = thread_counters().delta_since(&before);
                assert_eq!(d.hits + d.misses, reps, "thread did {reps} reads");
                d
            })
        };
        let global_before = pager.counters();
        let (a, b) = (spawn(400), spawn(300));
        let (da, db) = (a.join().unwrap(), b.join().unwrap());
        let dg = pager.counters().delta_since(&global_before);
        assert_eq!(da.hits + da.misses + db.hits + db.misses, 700);
        assert_eq!(dg.hits + dg.misses, 700);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn process_counters_accumulate_across_pagers() {
        // Two separate pagers both feed the same process-wide totals;
        // the delta across a known access pattern covers every read.
        let before = process_counters();
        for name in ["proc-a", "proc-b"] {
            let path = tmp(name);
            let pager = Pager::create_with_cache(&path, 4).unwrap();
            let id = pager.allocate().unwrap();
            pager.flush().unwrap();
            let mut out = [0u8; PAGE_SIZE];
            for _ in 0..5 {
                pager.read(id, &mut out).unwrap();
            }
            std::fs::remove_file(path).ok();
        }
        let after = process_counters();
        // Other tests run concurrently, so only assert our contribution
        // as a lower bound: 10 reads happened on this thread.
        assert!(
            after.hits + after.misses >= before.hits + before.misses + 10,
            "process totals must cover this thread's 10 reads: {before:?} -> {after:?}"
        );
        assert!(after.mmap_reads >= before.mmap_reads);
    }

    #[test]
    fn out_of_range_rejected() {
        let path = tmp("oob");
        let pager = Pager::create(&path).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        assert!(matches!(
            pager.read(0, &mut out),
            Err(StorageError::OutOfRange(_))
        ));
        assert!(matches!(
            pager.write(3, &out),
            Err(StorageError::OutOfRange(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let path = tmp("ragged");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lru_touch_keeps_hot_pages() {
        let path = tmp("lru");
        let pager = Pager::create_with_cache(&path, 2).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        let c = pager.allocate().unwrap();
        pager.flush().unwrap();
        let mut out = [0u8; PAGE_SIZE];
        pager.read(a, &mut out).unwrap();
        pager.read(b, &mut out).unwrap();
        pager.read(a, &mut out).unwrap(); // touch a
        pager.read(c, &mut out).unwrap(); // evicts b, not a
        let (reads_before, _) = pager.io_stats();
        pager.read(a, &mut out).unwrap(); // should be a hit
        let (reads_after, _) = pager.io_stats();
        assert_eq!(reads_before, reads_after);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let path = tmp("counters");
        let pager = Pager::create_with_cache(&path, 4).unwrap();
        let ids: Vec<_> = (0..4).map(|_| pager.allocate().unwrap()).collect();
        pager.flush().unwrap();
        let mut out = [0u8; PAGE_SIZE];
        // First pass misses only if pages fell out; with cap 4 they are
        // all resident after allocate, so reads are hits.
        for &id in &ids {
            pager.read(id, &mut out).unwrap();
        }
        let c = pager.counters();
        assert_eq!(c.hits, 4);
        assert_eq!(c.misses, 0);
        std::fs::remove_file(path).ok();
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;

    #[test]
    fn concurrent_readers_and_writers_on_distinct_pages() {
        let path = std::env::temp_dir().join(format!("si-pager-conc-{}", std::process::id()));
        let pager = std::sync::Arc::new(Pager::create_with_cache(&path, 8).unwrap());
        let pages: Vec<PageId> = (0..32).map(|_| pager.allocate().unwrap()).collect();
        std::thread::scope(|scope| {
            for (w, chunk) in pages.chunks(8).enumerate() {
                let pager = pager.clone();
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    for &id in &chunk {
                        let mut page = [0u8; PAGE_SIZE];
                        page[0] = w as u8 + 1;
                        page[1..5].copy_from_slice(&id.to_le_bytes());
                        pager.write(id, &page).unwrap();
                    }
                    for &id in &chunk {
                        let mut out = [0u8; PAGE_SIZE];
                        pager.read(id, &mut out).unwrap();
                        assert_eq!(out[0], w as u8 + 1);
                        assert_eq!(PageId::from_le_bytes(out[1..5].try_into().unwrap()), id);
                    }
                });
            }
        });
        pager.flush().unwrap();
        // Everything is durable and uncorrupted after the scramble.
        for (w, chunk) in pages.chunks(8).enumerate() {
            for &id in chunk {
                let mut out = [0u8; PAGE_SIZE];
                pager.read(id, &mut out).unwrap();
                assert_eq!(out[0], w as u8 + 1, "page {id}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_shared_reads_see_consistent_data() {
        // Many threads hammer the same page set through a sharded cache;
        // every read must observe exactly the bytes written, and the
        // cache must serve the hot set mostly from memory.
        let path = std::env::temp_dir().join(format!("si-pager-shared-{}", std::process::id()));
        let pager = std::sync::Arc::new(Pager::create_with_cache(&path, 256).unwrap());
        let pages: Vec<PageId> = (0..64).map(|_| pager.allocate().unwrap()).collect();
        for &id in &pages {
            let mut page = [0u8; PAGE_SIZE];
            page[..4].copy_from_slice(&id.to_le_bytes());
            page[PAGE_SIZE - 4..].copy_from_slice(&id.to_le_bytes());
            pager.write(id, &page).unwrap();
        }
        pager.flush().unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let pager = pager.clone();
                let pages = pages.clone();
                scope.spawn(move || {
                    let mut out = [0u8; PAGE_SIZE];
                    for round in 0..50 {
                        let id = pages[(t * 13 + round * 7) % pages.len()];
                        pager.read(id, &mut out).unwrap();
                        assert_eq!(PageId::from_le_bytes(out[..4].try_into().unwrap()), id);
                        assert_eq!(
                            PageId::from_le_bytes(out[PAGE_SIZE - 4..].try_into().unwrap()),
                            id
                        );
                    }
                });
            }
        });
        let c = pager.counters();
        assert!(c.hits > 0, "hot pages should be cache hits: {c:?}");
        std::fs::remove_file(&path).ok();
    }
}
