//! Storage error type.

use std::fmt;
use std::io;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page, tree or key reference was out of range.
    OutOfRange(String),
    /// On-disk bytes did not decode (wrong magic, truncated varint, ...).
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::OutOfRange(what) => write!(f, "out of range: {what}"),
            StorageError::Corrupt(what) => write!(f, "corrupt storage: {what}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Storage-layer result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io = StorageError::from(io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(StorageError::OutOfRange("tid 7".into())
            .to_string()
            .contains("tid 7"));
        assert!(StorageError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error;
        let e = StorageError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(StorageError::Corrupt("y".into()).source().is_none());
    }
}
