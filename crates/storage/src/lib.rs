//! Disk substrate for the Subtree Index.
//!
//! The paper's implementation is "a native disk-based B+Tree index" with
//! 4096-byte pages, relying on OS page buffering plus a small user-space
//! cache, and "flattened and sequentially stored parse trees in a separate
//! file, which we call the data file" (§6.1). This crate provides exactly
//! those pieces:
//!
//! * [`pager`] — a page-granular file abstraction with a write-back LRU
//!   cache ([`Pager`]);
//! * [`btree`] — a disk B+Tree ([`BTree`]) mapping arbitrary byte keys
//!   (canonical subtree encodings) to arbitrary byte values (posting
//!   lists), with overflow chains for values larger than a page;
//! * [`datafile`] — the corpus store ([`CorpusStore`]): the data file of
//!   flattened trees, its offset index and the label interner;
//! * [`shard`] — the shard manifest ([`ShardManifest`]) describing a
//!   tid-range partitioned index directory of N full per-shard indexes.

pub mod btree;
pub mod datafile;
pub mod error;
pub mod pager;
pub mod prefetch;
pub mod shard;

pub use btree::{BTree, BTreeStats, KeyStats, ValueReader, TID_HIST_BUCKETS};
pub use datafile::CorpusStore;
pub use error::{Result, StorageError};
pub use pager::{
    process_counters, thread_counters, thread_prefetch_counters, PageId, Pager, PagerCounters,
    ProcessPagerCounters, ThreadPrefetchCounters, PAGE_SIZE,
};
pub use prefetch::{prefetch_enabled, set_prefetch_enabled, PrefetchTicket};
pub use shard::{ShardEntry, ShardManifest, MANIFEST_FILE};
