//! Overlapped posting I/O: a small worker pool that pulls pages into
//! the pager cache ahead of the consumer that will read them.
//!
//! The paper's query cost is dominated by posting-list scans over
//! B+Tree overflow chains. Those reads are synchronous in the executor:
//! a cursor that exhausts its decode window blocks on the pager before
//! the next page arrives. Decode time is pure slack we can overlap
//! reads under — so the executor (and `ValueReader` itself) submit
//! *hints* here, and two daemon workers materialize them while the
//! consumer decodes.
//!
//! Two request shapes:
//!
//! * **Chain** — follow a B+Tree overflow chain from its head page,
//!   loading up to `pages` links. Chains are singly linked, so the next
//!   page id is only known once the current page is read: the worker's
//!   walk *is* the overlap. Bulk-loaded chains are laid out in
//!   **descending** contiguous page ids (the chain is written
//!   back-to-front), which defeats OS readahead for the synchronous
//!   consumer; the worker instead reads a whole descending window in
//!   one positioned read and follows links inside it, so eight
//!   consumer-side preads collapse into one.
//! * **Run** — a known-contiguous run of pages, no link-following.
//!
//! # Lifecycle and cancellation
//!
//! `submit` enqueues a request and returns a [`PrefetchTicket`].
//! Dropping the ticket cancels whatever has not happened yet (workers
//! re-check the flag at every page boundary); [`PrefetchTicket::detach`]
//! makes a hint fire-and-forget. Requests hold only a `Weak` reference
//! to the pager, so dropping an index cancels its outstanding requests
//! naturally — an upgrade failure counts as cancelled. A process-wide
//! cap ([`QUEUED_PAGES_CAP`]) bounds queued work; submissions over the
//! cap are rejected (counted cancelled) rather than queued.
//!
//! # mmap mode
//!
//! A mapped pager has no slot cache to populate; the worker instead
//! performs `madvise(WILLNEED)`-style *touch reads* of the mapped
//! bytes, faulting pages into the OS page cache. Only `issued` is
//! accounted there — with no cache slot there is no first-hit or
//! eviction event to classify a touch as useful or wasted.
//!
//! # Accounting
//!
//! Worker-side traffic lands in the process-wide `prefetch.*` counters
//! (`issued`/`useful`/`wasted`/`cancelled`, see
//! [`crate::process_counters`]); submission and consumption are also
//! mirrored per-thread ([`crate::thread_prefetch_counters`]) so a query
//! can attribute its own hints and useful hits exactly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};

use crate::pager::{
    bump_prefetch_cancelled, bump_prefetch_hint_local, bump_prefetch_issued, PageId, PagerInner,
    PAGE_SIZE,
};

/// Chain terminator in the B+Tree overflow-page layout (`0x03 | next
/// u32 | len u16 | data`). The prefetcher deliberately understands this
/// one page format: chains are the only structure whose next page is
/// unknowable without reading, and walking them off the consumer thread
/// is the whole point.
const CHAIN_NIL: PageId = PageId::MAX;
const TAG_OVERFLOW: u8 = 3;

/// Worker threads serving all pagers in the process.
const WORKERS: usize = 2;

/// Pages fetched per positioned read when a chain window or run allows.
const BATCH_PAGES: u32 = 8;

/// Process-wide bound on queued prefetch pages (16 MiB of 4 KiB
/// pages). Keeps a storm of hints from ballooning the queue; rejected
/// submissions count as cancelled.
pub const QUEUED_PAGES_CAP: usize = 4096;

static PREFETCH_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables prefetching (default: enabled). With
/// it disabled, `submit` returns `None` after a single atomic load —
/// the knob behind `--prefetch false` and the bench's on/off arms.
pub fn set_prefetch_enabled(on: bool) {
    PREFETCH_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether prefetching is globally enabled.
pub fn prefetch_enabled() -> bool {
    PREFETCH_ENABLED.load(Ordering::Relaxed)
}

/// What a request asks the worker to do from its start page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RequestKind {
    /// Follow overflow-chain links, loading up to the page budget.
    Chain,
    /// Load a contiguous ascending run of pages.
    Run,
}

struct Request {
    pager: Weak<PagerInner>,
    start: PageId,
    pages: u32,
    kind: RequestKind,
    cancel: Arc<AtomicBool>,
}

struct QueueState {
    queue: VecDeque<Request>,
    queued_pages: usize,
}

struct Scheduler {
    state: Mutex<QueueState>,
    work: Condvar,
}

static SCHEDULER: OnceLock<Arc<Scheduler>> = OnceLock::new();

fn scheduler() -> &'static Arc<Scheduler> {
    SCHEDULER.get_or_init(|| {
        let sched = Arc::new(Scheduler {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                queued_pages: 0,
            }),
            work: Condvar::new(),
        });
        for i in 0..WORKERS {
            let sched = Arc::clone(&sched);
            std::thread::Builder::new()
                .name(format!("si-prefetch-{i}"))
                .spawn(move || worker_loop(sched))
                .expect("spawn prefetch worker");
        }
        sched
    })
}

/// Handle to one submitted prefetch request. Dropping it cancels
/// whatever the worker has not done yet; a request that already
/// completed is unaffected. [`PrefetchTicket::detach`] turns the hint
/// fire-and-forget.
pub struct PrefetchTicket {
    cancel: Option<Arc<AtomicBool>>,
}

impl PrefetchTicket {
    /// Consumes the ticket without cancelling: the request runs (or
    /// stays queued) to completion. For hints whose beneficiary cannot
    /// conveniently hold the ticket, e.g. the next query in a batch.
    pub fn detach(mut self) {
        self.cancel = None;
    }
}

impl Drop for PrefetchTicket {
    fn drop(&mut self) {
        if let Some(cancel) = &self.cancel {
            cancel.store(true, Ordering::Relaxed);
        }
    }
}

/// Enqueues a prefetch request (see the module docs). Returns `None` —
/// submitting nothing — when prefetching is disabled, the request is
/// empty, or the queued-pages cap would be exceeded.
pub(crate) fn submit(
    pager: Weak<PagerInner>,
    start: PageId,
    pages: u32,
    kind: RequestKind,
) -> Option<PrefetchTicket> {
    if pages == 0 || start == CHAIN_NIL || !prefetch_enabled() {
        return None;
    }
    let sched = scheduler();
    let cancel = Arc::new(AtomicBool::new(false));
    {
        let mut st = sched.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.queued_pages + pages as usize > QUEUED_PAGES_CAP {
            bump_prefetch_cancelled(1);
            return None;
        }
        st.queued_pages += pages as usize;
        st.queue.push_back(Request {
            pager,
            start,
            pages,
            kind,
            cancel: Arc::clone(&cancel),
        });
    }
    sched.work.notify_one();
    bump_prefetch_hint_local();
    Some(PrefetchTicket {
        cancel: Some(cancel),
    })
}

fn worker_loop(sched: Arc<Scheduler>) {
    loop {
        let req = {
            let mut st = sched.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(req) = st.queue.pop_front() {
                    break req;
                }
                st = sched.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let reserved = req.pages as usize;
        run_request(&req);
        let mut st = sched.state.lock().unwrap_or_else(|e| e.into_inner());
        st.queued_pages = st.queued_pages.saturating_sub(reserved);
    }
}

fn run_request(req: &Request) {
    if req.cancel.load(Ordering::Relaxed) {
        bump_prefetch_cancelled(1);
        return;
    }
    let Some(pager) = req.pager.upgrade() else {
        // The index was closed while the request was queued.
        bump_prefetch_cancelled(1);
        return;
    };
    match req.kind {
        RequestKind::Chain => run_chain(&pager, req),
        RequestKind::Run => run_pages(&pager, req),
    }
}

fn overflow_succ(header: &[u8]) -> Option<PageId> {
    if header[0] != TAG_OVERFLOW {
        return None;
    }
    Some(PageId::from_le_bytes(header[1..5].try_into().unwrap()))
}

/// Walks an overflow chain, loading uncached links. Reads a descending
/// window of pages per syscall (see the module docs on chain layout)
/// and follows links within it; stops silently on anything that is not
/// an overflow page (a stale or already-recycled hint must never error
/// or load garbage with a `prefetched` flag).
fn run_chain(pager: &PagerInner, req: &Request) {
    let mut cur = req.start;
    let mut left = req.pages;
    if pager.is_mapped() {
        while cur != CHAIN_NIL && left > 0 && !req.cancel.load(Ordering::Relaxed) {
            let Some(page) = pager.peek_mapped(cur) else {
                return;
            };
            let Some(succ) = overflow_succ(page) else {
                return;
            };
            touch(page);
            bump_prefetch_issued(1);
            cur = succ;
            left -= 1;
        }
        if cur != CHAIN_NIL && left > 0 {
            bump_prefetch_cancelled(1);
        }
        return;
    }
    let mut batch = vec![0u8; BATCH_PAGES as usize * PAGE_SIZE];
    while cur != CHAIN_NIL && left > 0 {
        if req.cancel.load(Ordering::Relaxed) {
            bump_prefetch_cancelled(1);
            return;
        }
        // Already resident: follow the link without touching the disk
        // (or the LRU order, or any counter).
        if let Some(header) = pager.cached_page_header(cur) {
            let Some(succ) = overflow_succ(&header) else {
                return;
            };
            cur = succ;
            left -= 1;
            continue;
        }
        if cur >= pager.page_count() {
            return;
        }
        // One positioned read of the window [lo, cur] — chains run
        // descending, so the window extends downward from cur.
        let span = BATCH_PAGES.min(left).min(cur + 1);
        let lo = cur - (span - 1);
        let window = &mut batch[..span as usize * PAGE_SIZE];
        if pager.read_span_raw(lo, window).is_err() {
            return;
        }
        // Follow links while they stay inside the window; a cycle
        // cannot outlast `span` distinct in-window pages.
        for _ in 0..span {
            let off = (cur - lo) as usize * PAGE_SIZE;
            let page: &[u8; PAGE_SIZE] = batch[off..off + PAGE_SIZE]
                .try_into()
                .expect("page-sized slice");
            let Some(succ) = overflow_succ(page) else {
                return;
            };
            match pager.insert_prefetched(cur, page) {
                Ok(true) => bump_prefetch_issued(1),
                Ok(false) => {}
                Err(_) => return,
            }
            left -= 1;
            cur = succ;
            if cur == CHAIN_NIL || left == 0 {
                return;
            }
            if cur < lo || cur > lo + (span - 1) {
                break;
            }
        }
    }
}

/// Loads a contiguous ascending run of pages, batching the reads.
fn run_pages(pager: &PagerInner, req: &Request) {
    let end = req
        .start
        .saturating_add(req.pages)
        .min(pager.page_count().max(req.start));
    let mut cur = req.start;
    if pager.is_mapped() {
        while cur < end {
            if req.cancel.load(Ordering::Relaxed) {
                bump_prefetch_cancelled(1);
                return;
            }
            if let Some(page) = pager.peek_mapped(cur) {
                touch(page);
                bump_prefetch_issued(1);
            }
            cur += 1;
        }
        return;
    }
    let mut batch = vec![0u8; BATCH_PAGES as usize * PAGE_SIZE];
    while cur < end {
        if req.cancel.load(Ordering::Relaxed) {
            bump_prefetch_cancelled(1);
            return;
        }
        let span = BATCH_PAGES.min(end - cur);
        let window = &mut batch[..span as usize * PAGE_SIZE];
        if pager.read_span_raw(cur, window).is_err() {
            return;
        }
        for i in 0..span {
            let off = i as usize * PAGE_SIZE;
            let page: &[u8; PAGE_SIZE] = batch[off..off + PAGE_SIZE]
                .try_into()
                .expect("page-sized slice");
            match pager.insert_prefetched(cur + i, page) {
                Ok(true) => bump_prefetch_issued(1),
                Ok(false) => {}
                Err(_) => return,
            }
        }
        cur += span;
    }
}

/// Touch read faulting a mapped page into the OS page cache without
/// counting as a pager hit. `black_box` keeps the loads from being
/// optimized away.
fn touch(page: &[u8]) {
    std::hint::black_box(page[0]);
    std::hint::black_box(page[page.len() / 2]);
    std::hint::black_box(page[page.len() - 1]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{process_counters, Pager};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("si-prefetch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    /// Polls until `pred` holds or ~2s elapse (workers are async).
    fn wait_for(mut pred: impl FnMut() -> bool) -> bool {
        for _ in 0..2000 {
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        false
    }

    /// Writes a descending overflow chain of `n` pages (the bulk-load
    /// layout: head has the highest id, each page links to id-1) and
    /// returns the head page id.
    fn write_chain(pager: &Pager, n: u32) -> PageId {
        let ids: Vec<PageId> = (0..n).map(|_| pager.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = TAG_OVERFLOW;
            let next = if i == 0 { CHAIN_NIL } else { ids[i - 1] };
            page[1..5].copy_from_slice(&next.to_le_bytes());
            page[5..7].copy_from_slice(&100u16.to_le_bytes());
            page[7] = i as u8;
            pager.write(id, &page).unwrap();
        }
        pager.flush().unwrap();
        *ids.last().unwrap()
    }

    #[test]
    fn chain_prefetch_populates_cache_and_counts_useful() {
        let path = tmp("chain");
        let head = {
            let pager = Pager::create(&path).unwrap();
            write_chain(&pager, 20)
        };
        let pager = Pager::open(&path).unwrap();
        let before = process_counters();
        let ticket = pager.prefetch_chain(head, 20).expect("submit");
        assert!(
            wait_for(|| process_counters().prefetch_issued >= before.prefetch_issued + 20),
            "worker should load all 20 chain pages: {:?}",
            process_counters()
        );
        // Consumer walks the chain: every read is a hit on a
        // prefetched slot, so zero misses and 20 useful pages.
        let (reads_before, _) = pager.io_stats();
        let thread_before = crate::pager::thread_prefetch_counters();
        let mut cur = head;
        let mut seen = 0;
        let mut out = [0u8; PAGE_SIZE];
        while cur != CHAIN_NIL {
            pager.read(cur, &mut out).unwrap();
            assert_eq!(out[0], TAG_OVERFLOW);
            cur = PageId::from_le_bytes(out[1..5].try_into().unwrap());
            seen += 1;
        }
        assert_eq!(seen, 20);
        let (reads_after, _) = pager.io_stats();
        assert_eq!(reads_after, reads_before, "all pages were prefetched");
        let d = crate::pager::thread_prefetch_counters().delta_since(&thread_before);
        assert_eq!(d.useful, 20, "every prefetched page consumed once");
        drop(ticket);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_prefetch_loads_contiguous_pages() {
        let path = tmp("run");
        {
            let pager = Pager::create(&path).unwrap();
            for i in 0..12u8 {
                let id = pager.allocate().unwrap();
                let mut page = [0u8; PAGE_SIZE];
                page[0] = i;
                pager.write(id, &page).unwrap();
            }
            pager.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let before = process_counters();
        let ticket = pager.prefetch_run(0, 12).expect("submit");
        assert!(
            wait_for(|| process_counters().prefetch_issued >= before.prefetch_issued + 12),
            "worker should load the whole run"
        );
        let (reads_before, _) = pager.io_stats();
        let mut out = [0u8; PAGE_SIZE];
        for i in 0..12u8 {
            pager.read(PageId::from(i), &mut out).unwrap();
            assert_eq!(out[0], i);
        }
        let (reads_after, _) = pager.io_stats();
        assert_eq!(reads_after, reads_before);
        ticket.detach();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disabled_prefetch_submits_nothing() {
        let path = tmp("disabled");
        let pager = Pager::create(&path).unwrap();
        let head = write_chain(&pager, 4);
        set_prefetch_enabled(false);
        let got = pager.prefetch_chain(head, 4);
        set_prefetch_enabled(true);
        assert!(got.is_none(), "disabled prefetch must refuse submissions");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dropped_pager_cancels_queued_requests() {
        let path = tmp("drop");
        let head = {
            let pager = Pager::create(&path).unwrap();
            write_chain(&pager, 4)
        };
        // Cold reopen: with nothing cached, the request must either
        // load pages (issued) or be abandoned (cancelled) — it cannot
        // complete silently off the cache.
        let pager = Pager::open(&path).unwrap();
        let before = process_counters();
        // Race the worker deliberately: whichever side wins, the
        // request must resolve (issued or cancelled), never hang.
        let ticket = pager.prefetch_chain(head, 4);
        drop(pager);
        drop(ticket);
        assert!(
            wait_for(|| {
                let c = process_counters();
                c.prefetch_cancelled > before.prefetch_cancelled
                    || c.prefetch_issued >= before.prefetch_issued + 4
            }),
            "request must resolve after pager drop"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_of_unconsumed_prefetch_counts_wasted() {
        let path = tmp("wasted");
        let head = {
            let pager = Pager::create(&path).unwrap();
            write_chain(&pager, 8)
        };
        // Cache of 2 pages: prefetching an 8-page chain must evict
        // most of its own unconsumed loads.
        let pager = Pager::open_with_cache(&path, 2).unwrap();
        let before = process_counters();
        let _ticket = pager.prefetch_chain(head, 8);
        assert!(
            wait_for(|| process_counters().prefetch_wasted > before.prefetch_wasted),
            "tiny cache must evict unconsumed prefetched pages: {:?}",
            process_counters()
        );
        std::fs::remove_file(path).ok();
    }
}
