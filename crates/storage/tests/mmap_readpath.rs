//! The mmap read path: read-only opens must serve byte-identical pages
//! to the buffered pager, reject every mutation, and fall back to the
//! buffered path whenever the file cannot be mapped whole.

use si_storage::{BTree, Pager, PAGE_SIZE};

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "si-mmap-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ))
}

fn patterned_file(name: &str, pages: u32) -> std::path::PathBuf {
    let path = tmp_path(name);
    let pager = Pager::create(&path).unwrap();
    for p in 0..pages {
        let id = pager.allocate().unwrap();
        assert_eq!(id, p);
        let mut buf = [0u8; PAGE_SIZE];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((i as u32).wrapping_mul(31).wrapping_add(p * 7) & 0xFF) as u8;
        }
        pager.write(id, &buf).unwrap();
    }
    pager.flush().unwrap();
    path
}

#[test]
fn mapped_and_buffered_pagers_read_identically() {
    let pages = 9u32;
    let path = patterned_file("ident", pages);
    let buffered = Pager::open(&path).unwrap();
    let mapped = Pager::open_readonly(&path).unwrap();
    assert!(!buffered.is_mapped());
    #[cfg(unix)]
    assert!(mapped.is_mapped(), "unix read-only opens should map");
    assert_eq!(mapped.page_count(), pages);
    for p in 0..pages {
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        buffered.read(p, &mut a).unwrap();
        mapped.read(p, &mut b).unwrap();
        assert_eq!(a[..], b[..], "page {p}");
        // The borrow-based accessor serves the same bytes.
        let c = mapped.with_page(p, |page| page.to_vec()).unwrap();
        assert_eq!(a[..], c[..], "page {p} via with_page");
    }
    // Out-of-range reads fail on both.
    let mut buf = [0u8; PAGE_SIZE];
    assert!(mapped.read(pages, &mut buf).is_err());
    assert!(buffered.read(pages, &mut buf).is_err());
    std::fs::remove_file(&path).ok();
}

#[cfg(unix)]
#[test]
fn mapped_pager_rejects_mutation() {
    let path = patterned_file("reject", 3);
    let mapped = Pager::open_readonly(&path).unwrap();
    assert!(mapped.is_mapped());
    let buf = [0u8; PAGE_SIZE];
    assert!(mapped.write(0, &buf).is_err(), "write must be rejected");
    assert!(mapped.allocate().is_err(), "allocate must be rejected");
    // The file on disk is untouched by the rejected attempts.
    let mut before = [0u8; PAGE_SIZE];
    mapped.read(0, &mut before).unwrap();
    drop(mapped);
    let reread = Pager::open(&path).unwrap();
    let mut after = [0u8; PAGE_SIZE];
    reread.read(0, &mut after).unwrap();
    assert_eq!(before[..], after[..]);
    std::fs::remove_file(&path).ok();
}

/// Files that cannot be mapped whole (here: empty) fall back to the
/// buffered pager instead of failing the open.
#[test]
fn unmappable_files_fall_back_to_the_buffered_pager() {
    let path = tmp_path("fallback");
    Pager::create(&path).unwrap().flush().unwrap();
    let pager = Pager::open_readonly(&path).unwrap();
    assert!(!pager.is_mapped(), "zero-length files cannot be mapped");
    assert_eq!(pager.page_count(), 0);
    std::fs::remove_file(&path).ok();

    // A file that is not a whole number of pages is corrupt either way.
    let odd = tmp_path("odd");
    std::fs::write(&odd, vec![0u8; PAGE_SIZE + 100]).unwrap();
    assert!(Pager::open_readonly(&odd).is_err());
    assert!(Pager::open(&odd).is_err());
    std::fs::remove_file(&odd).ok();
}

#[test]
fn btree_readonly_open_serves_identical_values_and_rejects_writes() {
    let path = tmp_path("btree");
    let mut bt = BTree::create(&path).unwrap();
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..400u32)
        .map(|i| {
            let key = format!("key-{i:05}").into_bytes();
            // Mix short values with multi-page overflow chains.
            let len = if i % 37 == 0 {
                3 * PAGE_SIZE + 17
            } else {
                40 + i as usize
            };
            let value: Vec<u8> = (0..len).map(|j| ((j as u32 ^ i) & 0xFF) as u8).collect();
            (key, value)
        })
        .collect();
    for (k, v) in &pairs {
        bt.insert(k, v).unwrap();
    }
    bt.flush().unwrap();
    drop(bt);

    let rw = BTree::open(&path).unwrap();
    let ro = BTree::open_readonly(&path).unwrap();
    assert!(!rw.is_mapped());
    #[cfg(unix)]
    assert!(ro.is_mapped());
    for (k, v) in &pairs {
        assert_eq!(rw.get(k).unwrap().as_deref(), Some(v.as_slice()));
        assert_eq!(ro.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }
    // Iteration over the mapped tree sees every pair in order.
    let walked: Vec<(Vec<u8>, Vec<u8>)> = ro.iter().unwrap().map(|e| e.unwrap()).collect();
    let mut sorted = pairs.clone();
    sorted.sort();
    assert_eq!(walked, sorted);
    #[cfg(unix)]
    {
        let mut ro = ro;
        assert!(
            ro.insert(b"new-key", b"nope").is_err(),
            "mapped trees reject inserts"
        );
    }
    std::fs::remove_file(&path).ok();
}
