//! Property test: the disk B+Tree behaves exactly like `BTreeMap` under
//! arbitrary insert/overwrite workloads, including page-sized values and
//! reopen cycles.
//!
//! Requires the external `proptest` crate; compiled out by default
//! because this build environment is offline (enable the `proptest`
//! feature after adding the dependency to run them).
#![cfg(feature = "proptest")]

use std::collections::BTreeMap;

use proptest::prelude::*;
use si_storage::BTree;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: Vec<u8>, value_len: usize },
    Lookup { key: Vec<u8> },
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small key space to force overwrites; varied lengths to stress
    // leaf packing.
    prop::collection::vec(0u8..16, 1..20)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), 0usize..5000).prop_map(|(key, value_len)| Op::Insert { key, value_len }),
        key_strategy().prop_map(|key| Op::Lookup { key }),
    ]
}

fn value_for(key: &[u8], len: usize) -> Vec<u8> {
    // Deterministic value derived from key and length.
    (0..len)
        .map(|i| key[i % key.len()].wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn behaves_like_btreemap(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let path = std::env::temp_dir().join(format!(
            "si-prop-btree-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let mut tree = BTree::create(&path).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert { key, value_len } => {
                    let value = value_for(key, *value_len);
                    tree.insert(key, &value).unwrap();
                    model.insert(key.clone(), value);
                }
                Op::Lookup { key } => {
                    prop_assert_eq!(tree.get(key).unwrap(), model.get(key).cloned());
                }
            }
        }
        prop_assert_eq!(tree.stats().key_count, model.len() as u64);
        // Full scan agrees, in order.
        let scanned: Vec<(Vec<u8>, Vec<u8>)> =
            tree.iter().unwrap().map(|r| r.unwrap()).collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&scanned, &want);
        // Reopen preserves everything.
        tree.flush().unwrap();
        drop(tree);
        let reopened = BTree::open(&path).unwrap();
        for (k, v) in &model {
            let got = reopened.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bulk_load_equals_scan(pairs in prop::collection::btree_map(
        prop::collection::vec(0u8..32, 1..24),
        0usize..3000,
        0..80,
    )) {
        let path = std::env::temp_dir().join(format!(
            "si-prop-bulk-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let materialized: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(k, &len)| (k.clone(), value_for(k, len)))
            .collect();
        let tree = BTree::bulk_load(&path, materialized.clone()).unwrap();
        let scanned: Vec<(Vec<u8>, Vec<u8>)> =
            tree.iter().unwrap().map(|r| r.unwrap()).collect();
        prop_assert_eq!(&scanned, &materialized);
        for (k, v) in &materialized {
            let got = tree.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        std::fs::remove_file(&path).ok();
    }
}
