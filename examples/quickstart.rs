//! Quickstart: build a Subtree Index over a synthetic treebank and run a
//! few tree-pattern queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use subtree_index::prelude::*;

fn main() {
    // 1. Get a corpus. Here: 2,000 synthetic news-style parse trees
    //    (deterministic from the seed). To index real data instead, read
    //    PTB bracketed trees with `si_parsetree::ptb::parse_corpus`.
    let corpus = GeneratorConfig::default().with_seed(42).generate(2_000);
    println!(
        "corpus: {} sentences, {} distinct labels",
        corpus.len(),
        corpus.interner().len()
    );

    // 2. Build the index: all unique subtrees of up to mss = 3 nodes,
    //    root-split coding (the paper's fastest configuration).
    let dir = std::env::temp_dir().join("si-quickstart");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(3, Coding::RootSplit),
    )
    .expect("index build");
    let stats = index.stats();
    println!(
        "index: {} keys, {} postings, {:.1} MiB, built in {:.2}s",
        stats.keys,
        stats.postings,
        stats.index_bytes as f64 / (1024.0 * 1024.0),
        stats.build_seconds
    );

    // 3. Query it. `/` (default) is parent-child, `//` is
    //    ancestor-descendant; queries are unordered.
    let mut interner = index.interner();
    for src in [
        "NP(DT)(NN)",                  // determiner + noun under one NP
        "S(NP)(VP(VBZ)(NP))",          // transitive present-tense clause
        "VP(//NN)",                    // a VP dominating a noun anywhere
        "S(NP(DT(the))(NN))(VP(VBZ))", // lexicalized: subject "the ..."
    ] {
        let query = parse_query(src, &mut interner).expect("query syntax");
        let result = index.evaluate(&query).expect("evaluate");
        println!(
            "{src:<30} {:>6} matches  ({} covers, {} joins)",
            result.len(),
            result.stats.covers,
            result.stats.joins
        );
        // Show one concrete sentence for the first query forms.
        if let Some(&(tid, _pre)) = result.matches.first() {
            let tree = index.store().get(tid).expect("fetch tree");
            let text = si_parsetree::ptb::write(&tree, &interner);
            let short = if text.len() > 100 {
                &text[..100]
            } else {
                &text
            };
            println!("    e.g. tree {tid}: {short}...");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
