//! A corpus-linguistics workload: frequency statistics of syntactic
//! constructions over a treebank — the kind of query TGrep2 and
//! CorpusSearch users run, here answered from the index instead of a
//! full corpus scan.
//!
//! ```text
//! cargo run --release --example corpus_linguistics
//! ```

use std::time::Instant;

use si_corpus::CorpusStats;
use si_query::count_matches;
use subtree_index::prelude::*;

fn main() {
    let corpus = GeneratorConfig::default().with_seed(7).generate(5_000);
    let stats = CorpusStats::compute(&corpus);
    println!(
        "treebank: {} sentences, {} nodes, avg tree size {:.1}, avg internal branching {:.2}",
        stats.sentences, stats.total_nodes, stats.avg_tree_size, stats.avg_internal_branching
    );

    let dir = std::env::temp_dir().join("si-linguistics-example");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(3, Coding::RootSplit),
    )
    .expect("build");
    let mut interner = index.interner();

    // Construction frequencies: how often does each pattern occur?
    let constructions = [
        ("subject-verb-object clause", "S(NP)(VP(VBZ)(NP))"),
        ("PP attachment to NP", "NP(NP)(PP(IN)(NP))"),
        ("relative clause", "NP(NP)(SBAR)"),
        ("coordination", "NP(NP)(CC)(NP)"),
        ("modal verb phrase", "VP(MD)(VP)"),
        ("definite nominal", "NP(DT(the))(NN)"),
        ("clausal complement", "VP(VBZ)(SBAR)"),
        ("nested PP chain", "PP(IN)(NP(NP)(PP))"),
    ];
    println!(
        "\n{:<30} {:>9} {:>12} {:>12}",
        "construction", "matches", "index (ms)", "scan (ms)"
    );
    for (name, src) in constructions {
        let query = parse_query(src, &mut interner).expect("query");
        let t0 = Instant::now();
        let via_index = index.evaluate(&query).expect("evaluate").len();
        let index_ms = t0.elapsed().as_secs_f64() * 1e3;
        // The TGrep2 way: scan every tree with the matcher.
        let t1 = Instant::now();
        let via_scan = count_matches(corpus.trees().iter(), &query);
        let scan_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(via_index, via_scan, "index and scan must agree");
        println!("{name:<30} {via_index:>9} {index_ms:>12.2} {scan_ms:>12.2}");
    }

    // Per-label selectivity: the backbone of query optimization.
    let freq = corpus.label_frequencies();
    let mut tagged: Vec<(&str, u64)> = corpus
        .interner()
        .iter()
        .map(|(l, name)| (name, freq[l.id() as usize]))
        .filter(|(name, _)| name.chars().all(|c| c.is_ascii_uppercase()))
        .collect();
    tagged.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!("\nmost frequent grammatical tags:");
    for (name, count) in tagged.iter().take(8) {
        println!("  {name:<8} {count}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
