//! The paper's §1 motivating scenario: answer-sentence retrieval.
//!
//! A question like the TREC-2004 *"What kind of animal is agouti?"* is
//! rewritten declaratively ("agouti is a ..."), parsed, and the parse is
//! matched against an indexed corpus: sentences with the same syntactic
//! relationship between the query terms are answers even when extra
//! modifiers intervene (Figure 1).
//!
//! ```text
//! cargo run --release --example question_answering
//! ```

use si_parsetree::ptb;
use subtree_index::prelude::*;

fn main() {
    // A small hand-written "news corpus". The first sentence is Figure
    // 1(b) of the paper: the match survives the intervening adjectives.
    let mut interner = LabelInterner::new();
    let sentences = [
        // The answer sentence (Figure 1b).
        "(S (NP (DT The) (NNS agouti)) (VP (VBZ is) (NP (DT a) (JJ short-tailed) \
         (JJ plant-eating) (NN rodent))))",
        // Distractors: wrong structure or wrong terms.
        "(S (NP (DT The) (NNS agouti)) (VP (VBD ran) (PP (IN into) (NP (DT the) (NN forest)))))",
        "(S (NP (DT A) (NN rodent)) (VP (VBZ is) (NP (DT an) (NN animal))))",
        "(S (NP (NNS agoutis)) (VP (VBP are) (ADJP (JJ common))))",
        // Another positive with a different determiner phrase.
        "(S (NP (DT The) (NNS agouti)) (VP (VBZ is) (NP (DT a) (NN mammal) \
         (PP (IN of) (NP (NNP South) (NNP America))))))",
    ];
    let trees: Vec<_> = sentences
        .iter()
        .map(|s| ptb::parse(s, &mut interner).expect("PTB sentence"))
        .collect();

    let dir = std::env::temp_dir().join("si-qa-example");
    let index = SubtreeIndex::build(
        &dir,
        &trees,
        &interner,
        IndexOptions::new(3, Coding::RootSplit),
    )
    .expect("build");

    // Figure 1(a): the parse skeleton of "agouti is a <answer>".
    let question = "S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))";
    println!("question parse: {question}\n");
    let query = parse_query(question, &mut interner).expect("query");
    let result = index.evaluate(&query).expect("evaluate");

    println!("{} answer sentence(s):", result.len());
    for &(tid, _) in &result.matches {
        let tree = index.store().get(tid).expect("tree");
        println!("  [{}] {}", tid, ptb::write(&tree, &interner));
        // Extract the answer: the NN inside the matched object NP.
        let nn = interner.get("NN").expect("NN tag");
        let answers: Vec<&str> = tree
            .nodes()
            .filter(|&n| tree.label(n) == nn)
            .flat_map(|n| tree.children(n))
            .map(|w| interner.resolve(tree.label(w)))
            .collect();
        println!("      -> candidate answers: {answers:?}");
    }

    // Keyword search would also hit the distractor about running into
    // the forest; structural search does not.
    let keyword_hits = trees
        .iter()
        .filter(|t| t.nodes().any(|n| interner.resolve(t.label(n)) == "agouti"))
        .count();
    println!(
        "\nkeyword 'agouti' hits {keyword_hits} sentences; the tree query returns {}",
        result.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
