//! Side-by-side comparison of the three coding schemes on one workload:
//! index size, construction time and query latency — a miniature of the
//! paper's §6 evaluation.
//!
//! ```text
//! cargo run --release --example coding_comparison
//! ```

use std::time::Instant;

use subtree_index::prelude::*;

fn main() {
    let corpus = GeneratorConfig::default().with_seed(99).generate(3_000);
    let mut interner = corpus.interner().clone();
    let queries: Vec<(String, Query)> = [
        "NP(DT)(NN)",
        "S(NP)(VP(VBZ))",
        "S(NP(DT)(JJ)(NN))(VP)",
        "VP(VBZ)(NP(NP)(PP(IN)(NP)))",
        "S(//SBAR(IN)(S))",
    ]
    .iter()
    .map(|s| {
        (
            (*s).to_string(),
            parse_query(s, &mut interner).expect("query"),
        )
    })
    .collect();

    println!(
        "{:<18} {:>4} {:>10} {:>12} {:>10} {:>12}",
        "coding", "mss", "keys", "index bytes", "build (s)", "query (ms)"
    );
    for coding in [
        Coding::FilterBased,
        Coding::RootSplit,
        Coding::SubtreeInterval,
    ] {
        for mss in [1usize, 3, 5] {
            let dir = std::env::temp_dir().join(format!("si-compare-{mss}-{coding:?}"));
            let index = SubtreeIndex::build(
                &dir,
                corpus.trees(),
                corpus.interner(),
                IndexOptions::new(mss, coding),
            )
            .expect("build");
            let stats = index.stats();
            // Average latency over the workload (3 repetitions).
            let reps = 3;
            let t0 = Instant::now();
            let mut total_matches = 0usize;
            for _ in 0..reps {
                for (_, q) in &queries {
                    total_matches += index.evaluate(q).expect("evaluate").len();
                }
            }
            let avg_ms = t0.elapsed().as_secs_f64() * 1e3 / (reps * queries.len()) as f64;
            let _ = total_matches;
            println!(
                "{:<18} {:>4} {:>10} {:>12} {:>10.2} {:>12.3}",
                coding.name(),
                mss,
                stats.keys,
                stats.index_bytes,
                stats.build_seconds,
                avg_ms
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    println!("\nExpected shape (paper §6): filter-based is smallest but pays a");
    println!("validation phase on every query; subtree interval is largest;");
    println!("root-split matches filter-based's size class while answering");
    println!("queries exactly from the index — fastest at mss >= 2.");
}
