//! # subtree-index
//!
//! A production-quality Rust implementation of the **Subtree Index (SI)**
//! from *"Efficient Indexing and Querying over Syntactically Annotated
//! Trees"* (Chubak & Rafiei, PVLDB 5(11), 2012).
//!
//! The SI indexes **all unique subtrees up to a maximum size `mss`** of a
//! corpus of syntactic parse trees and supports exact tree-pattern queries
//! with parent-child (`/`) and ancestor-descendant (`//`) axes under three
//! posting-list coding schemes:
//!
//! * **filter-based** — tree ids only; candidates are post-validated,
//! * **subtree interval** — `(pre, post, level, order)` per subtree node,
//! * **root-split** — `(pre, post, level)` of the subtree root only; the
//!   paper's headline contribution, smallest and fastest.
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`si_parsetree`] — trees, labels, interval numbering, PTB I/O;
//! * [`si_storage`] — pager, disk B+Tree, corpus store;
//! * [`si_corpus`] — synthetic treebank generator and query sets;
//! * [`si_query`] — query model, parser and in-memory matcher;
//! * [`si_core`] — subtree extraction, coding schemes, decomposition and
//!   the query processor;
//! * [`si_service`] — the concurrent query service: shared-scan batch
//!   scheduler plus the decoded posting-block cache;
//! * [`si_baselines`] — ATreeGrep and the frequency-based comparators.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; abridged:
//!
//! ```no_run
//! use subtree_index::prelude::*;
//!
//! // Generate a small synthetic treebank (or import PTB files).
//! let corpus = GeneratorConfig::default().with_seed(42).generate(1_000);
//!
//! // Build a Subtree Index with mss = 3 under root-split coding.
//! let dir = std::path::Path::new("/tmp/si-demo");
//! let index = SubtreeIndex::build(
//!     dir,
//!     corpus.trees(),
//!     corpus.interner(),
//!     IndexOptions::new(3, Coding::RootSplit),
//! )
//! .unwrap();
//!
//! // Query: a VP whose child NP dominates a NN somewhere below.
//! let mut interner = index.interner();
//! let query = parse_query("VP(NP(//NN))", &mut interner).unwrap();
//! let matches = index.evaluate(&query).unwrap();
//! println!("{} matches", matches.len());
//! ```

pub use si_baselines;
pub use si_core;
pub use si_corpus;
pub use si_parsetree;
pub use si_query;
pub use si_service;
pub use si_storage;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use si_core::{Coding, ExecMode, IndexOptions, SubtreeIndex};
    pub use si_corpus::GeneratorConfig;
    pub use si_parsetree::{Label, LabelInterner, NodeId, ParseTree, TreeBuilder, TreeId};
    pub use si_query::{parse_query, Axis, Query};
    pub use si_service::{QueryService, ServiceConfig};
    pub use si_storage::CorpusStore;
}
