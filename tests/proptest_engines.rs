//! The capstone property: on arbitrary small corpora and arbitrary
//! subtree-shaped queries, every engine returns exactly the matcher's
//! result set.
//!
//! Requires the external `proptest` crate; compiled out by default
//! because this build environment is offline (enable the `proptest`
//! feature after adding the dependency to run them).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use subtree_index::prelude::*;
use subtree_index::si_baselines::{ATreeGrep, FreqIndex, FreqIndexOptions};
use subtree_index::si_parsetree::TreeBuilder;
use subtree_index::si_query::matcher::Matcher;
use subtree_index::si_query::QueryBuilder;

#[derive(Debug, Clone)]
struct Shape {
    label: u8,
    children: Vec<Shape>,
}

fn shape_strategy(max_label: u8, depth: u32, nodes: u32) -> impl Strategy<Value = Shape> {
    let leaf = (0..max_label).prop_map(|label| Shape {
        label,
        children: Vec::new(),
    });
    leaf.prop_recursive(depth, nodes, 3, move |inner| {
        ((0..max_label), prop::collection::vec(inner, 0..3))
            .prop_map(|(label, children)| Shape { label, children })
    })
}

fn build_tree(shape: &Shape, li: &mut LabelInterner) -> ParseTree {
    fn go(shape: &Shape, b: &mut TreeBuilder, li: &mut LabelInterner) {
        b.open(li.intern(&format!("T{}", shape.label)));
        for c in &shape.children {
            go(c, b, li);
        }
        b.close();
    }
    let mut b = TreeBuilder::new();
    go(shape, &mut b, li);
    b.finish().unwrap()
}

fn build_query(shape: &Shape, mut axis_bits: u64, li: &mut LabelInterner) -> Query {
    fn go(shape: &Shape, bits: &mut u64, b: &mut QueryBuilder, li: &mut LabelInterner) {
        let axis = if *bits & 1 == 1 {
            Axis::Descendant
        } else {
            Axis::Child
        };
        *bits >>= 1;
        b.open(li.intern(&format!("T{}", shape.label)), axis);
        for c in &shape.children {
            go(c, bits, b, li);
        }
        b.close();
    }
    let mut b = QueryBuilder::new();
    go(shape, &mut axis_bits, &mut b, li);
    b.finish().unwrap()
}

fn truth(trees: &[ParseTree], q: &Query) -> Vec<(TreeId, u32)> {
    let mut out = Vec::new();
    for (tid, tree) in trees.iter().enumerate() {
        for r in Matcher::new(tree, q).roots() {
            out.push((tid as TreeId, r.0));
        }
    }
    out
}

proptest! {
    // Each case builds six indexes; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_on_random_inputs(
        corpus_shapes in prop::collection::vec(shape_strategy(4, 4, 20), 3..12),
        query_shape in shape_strategy(4, 3, 6),
        axis_bits in any::<u64>(),
        mss in 1usize..4,
    ) {
        let mut li = LabelInterner::new();
        let trees: Vec<ParseTree> = corpus_shapes.iter().map(|s| build_tree(s, &mut li)).collect();
        let query = build_query(&query_shape, axis_bits, &mut li);
        let want = truth(&trees, &query);

        let base = std::env::temp_dir().join(format!(
            "si-prop-engines-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        for coding in [Coding::FilterBased, Coding::RootSplit, Coding::SubtreeInterval] {
            let dir = base.join(format!("{coding:?}"));
            let index = SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(mss, coding))
                .expect("build");
            let got = index.evaluate(&query).expect("evaluate").matches;
            prop_assert_eq!(&got, &want, "coding {:?} mss {}", coding, mss);
        }
        let atg = ATreeGrep::build(&trees);
        prop_assert_eq!(atg.evaluate(&query).0, want.clone(), "atreegrep");
        let freq = FreqIndex::build(&trees, FreqIndexOptions { mss, fraction: 0.05 });
        prop_assert_eq!(freq.evaluate(&query).0, want, "freq");
        std::fs::remove_dir_all(&base).ok();
    }
}
