//! Workspace-level integration tests: the five engines (three SI
//! codings, ATreeGrep, frequency-based) plus the matcher must agree on
//! randomized corpora; persistence and PTB import round-trip through the
//! whole stack.

use subtree_index::prelude::*;
use subtree_index::si_baselines::{ATreeGrep, FreqIndex, FreqIndexOptions};
use subtree_index::si_corpus::fb_query_set;
use subtree_index::si_parsetree::ptb;
use subtree_index::si_query::matcher::Matcher;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("si-e2e-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn truth(trees: &[ParseTree], q: &Query) -> Vec<(TreeId, u32)> {
    let mut out = Vec::new();
    for (tid, tree) in trees.iter().enumerate() {
        for r in Matcher::new(tree, q).roots() {
            out.push((tid as TreeId, r.0));
        }
    }
    out
}

#[test]
fn five_engines_agree() {
    let corpus = GeneratorConfig::default().with_seed(2024).generate(100);
    let mut interner = corpus.interner().clone();
    let heldout = GeneratorConfig::default()
        .with_seed(2025)
        .generate_into(30, &mut interner);
    let fb = fb_query_set(&corpus, &heldout, 11);
    let queries: Vec<Query> = fb.iter().step_by(5).map(|f| f.query.clone()).collect();

    let base = tmp("five");
    let indexes: Vec<SubtreeIndex> = [
        Coding::FilterBased,
        Coding::RootSplit,
        Coding::SubtreeInterval,
    ]
    .into_iter()
    .map(|coding| {
        SubtreeIndex::build(
            &base.join(format!("{coding:?}")),
            corpus.trees(),
            &interner,
            IndexOptions::new(3, coding),
        )
        .unwrap()
    })
    .collect();
    let atg = ATreeGrep::build(corpus.trees());
    let freq = FreqIndex::build(
        corpus.trees(),
        FreqIndexOptions {
            mss: 3,
            fraction: 0.01,
        },
    );

    for q in &queries {
        let want = truth(corpus.trees(), q);
        for index in &indexes {
            assert_eq!(
                index.evaluate(q).unwrap().matches,
                want,
                "SI {:?}",
                index.options().coding
            );
        }
        assert_eq!(atg.evaluate(q).0, want, "atreegrep");
        assert_eq!(freq.evaluate(q).0, want, "frequency-based");
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn ptb_import_pipeline() {
    // Import a bracketed file, index it, query it, reopen it.
    let text = "\
# sample export
(S (NP (DT the) (NN index)) (VP (VBZ works)))
(S (NP (NNS trees)) (VP (VBP are) (ADJP (JJ fine))))
(S (NP (DT a) (NN query)) (VP (VBZ finds) (NP (DT the) (NN match))))
";
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(text, &mut interner).unwrap();
    assert_eq!(trees.len(), 3);
    let dir = tmp("ptb");
    let index = SubtreeIndex::build(
        &dir,
        &trees,
        &interner,
        IndexOptions::new(2, Coding::RootSplit),
    )
    .unwrap();
    let mut qi = index.interner();
    let q = parse_query("VP(VBZ)(NP(DT)(NN))", &mut qi).unwrap();
    assert_eq!(index.evaluate(&q).unwrap().matches, vec![(2, 6)]);
    drop(index);
    let reopened = SubtreeIndex::open(&dir).unwrap();
    assert_eq!(reopened.evaluate(&q).unwrap().matches, vec![(2, 6)]);
    // Round-trip the stored tree back to bracketed text.
    let tree = reopened.store().get(2).unwrap();
    let written = ptb::write(&tree, reopened.store().interner());
    assert!(written.starts_with("(S (NP (DT a) (NN query))"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn match_counts_are_coding_independent_across_mss() {
    let corpus = GeneratorConfig::default().with_seed(77).generate(150);
    let mut interner = corpus.interner().clone();
    let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)", "S(NP(NP)(PP))(VP)"]
        .iter()
        .map(|s| parse_query(s, &mut interner).unwrap())
        .collect();
    let base = tmp("countgrid");
    let mut reference: Vec<Option<Vec<(TreeId, u32)>>> = vec![None; queries.len()];
    for mss in 1..=5 {
        for coding in [
            Coding::FilterBased,
            Coding::RootSplit,
            Coding::SubtreeInterval,
        ] {
            let index = SubtreeIndex::build(
                &base.join(format!("{mss}-{coding:?}")),
                corpus.trees(),
                &interner,
                IndexOptions::new(mss, coding),
            )
            .unwrap();
            for (i, q) in queries.iter().enumerate() {
                let got = index.evaluate(q).unwrap().matches;
                match &reference[i] {
                    None => reference[i] = Some(got),
                    Some(want) => assert_eq!(&got, want, "query {i} mss {mss} {coding:?}"),
                }
            }
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn root_split_is_smaller_and_not_slower_than_interval() {
    // The paper's headline size claim: root-split cuts the interval
    // index by 50-80% (abstract), more as mss grows.
    let corpus = GeneratorConfig::default().with_seed(5).generate(400);
    let base = tmp("sizes");
    for mss in [3usize, 5] {
        let rs = SubtreeIndex::build(
            &base.join(format!("rs{mss}")),
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(mss, Coding::RootSplit),
        )
        .unwrap();
        let iv = SubtreeIndex::build(
            &base.join(format!("iv{mss}")),
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(mss, Coding::SubtreeInterval),
        )
        .unwrap();
        let ratio = rs.stats().posting_bytes as f64 / iv.stats().posting_bytes as f64;
        assert!(
            ratio < 0.5,
            "mss={mss}: root-split postings should be <50% of interval, got {ratio:.2}"
        );
        assert!(rs.stats().postings <= iv.stats().postings);
    }
    std::fs::remove_dir_all(&base).ok();
}
